#include "avg_pooling.h"

#include <cassert>

#include "feedback_unit.h"
#include "sc/apc.h"

namespace aqfpsc::blocks {

AvgPoolingBlock::AvgPoolingBlock(int m) : m_(m)
{
    assert(m >= 1);
}

sc::Bitstream
AvgPoolingBlock::run(const std::vector<sc::Bitstream> &inputs) const
{
    assert(static_cast<int>(inputs.size()) == m_);
    const std::size_t len = inputs[0].size();

    sc::ColumnCounts counts(len, m_);
    for (const auto &in : inputs) {
        assert(in.size() == len);
        counts.add(in);
    }
    std::vector<int> col;
    counts.extract(col);

    PoolingFeedbackUnit unit(m_);
    sc::Bitstream out(len);
    for (std::size_t i = 0; i < len; ++i) {
        if (unit.step(col[i]))
            out.set(i, true);
    }
    return out;
}

sc::Bitstream
AvgPoolingBlock::runLiteral(const std::vector<sc::Bitstream> &inputs,
                            sorting::SortKind kind) const
{
    assert(static_cast<int>(inputs.size()) == m_);
    const std::size_t len = inputs[0].size();

    const sorting::BitonicNetwork net =
        sorting::BitonicNetwork::sortThenMerge(m_, m_, kind);

    std::vector<bool> wires(static_cast<std::size_t>(2 * m_), false);
    std::vector<bool> feedback(static_cast<std::size_t>(m_), false);
    sc::Bitstream out(len);

    for (std::size_t i = 0; i < len; ++i) {
        for (int j = 0; j < m_; ++j)
            wires[static_cast<std::size_t>(j)] =
                inputs[static_cast<std::size_t>(j)].get(i);
        for (int j = 0; j < m_; ++j)
            wires[static_cast<std::size_t>(m_ + j)] =
                feedback[static_cast<std::size_t>(j)];

        net.apply(wires);

        // 1-indexed Ds[M] = 0-indexed position M-1.
        const bool so = wires[static_cast<std::size_t>(m_ - 1)];
        if (so)
            out.set(i, true);
        for (int j = 0; j < m_; ++j) {
            // SO selects the feedback slice: surplus [M..2M) when a 1 was
            // emitted, saved ones [0..M) otherwise.
            feedback[static_cast<std::size_t>(j)] =
                so ? wires[static_cast<std::size_t>(m_ + j)]
                   : wires[static_cast<std::size_t>(j)];
        }
    }
    return out;
}

aqfp::Netlist
AvgPoolingBlock::buildNetlist(int m, sorting::SortKind kind)
{
    assert(m >= 1);
    aqfp::Netlist net;
    std::vector<aqfp::NodeId> wires(static_cast<std::size_t>(2 * m));
    for (int j = 0; j < 2 * m; ++j)
        wires[static_cast<std::size_t>(j)] = net.addInput();

    const sorting::BitonicNetwork sorter =
        sorting::BitonicNetwork::sortThenMerge(m, m, kind);
    for (const auto &stage : sorter.stages()) {
        for (const auto &op : stage) {
            auto &wa = wires[static_cast<std::size_t>(op.a)];
            auto &wb = wires[static_cast<std::size_t>(op.b)];
            if (op.kind == sorting::OpKind::CompareExchange) {
                const aqfp::NodeId mx =
                    net.addGate(aqfp::CellType::Or2, wa, wb);
                const aqfp::NodeId mn =
                    net.addGate(aqfp::CellType::And2, wa, wb);
                wa = mx;
                wb = mn;
            } else {
                auto &wc = wires[static_cast<std::size_t>(op.c)];
                const aqfp::NodeId mx = net.addGate(
                    aqfp::CellType::Or2,
                    net.addGate(aqfp::CellType::Or2, wa, wb), wc);
                const aqfp::NodeId md =
                    net.addGate(aqfp::CellType::Maj3, wa, wb, wc);
                const aqfp::NodeId mn = net.addGate(
                    aqfp::CellType::And2,
                    net.addGate(aqfp::CellType::And2, wa, wb), wc);
                wa = mx;
                wb = md;
                wc = mn;
            }
        }
    }

    const aqfp::NodeId so = wires[static_cast<std::size_t>(m - 1)];
    net.markOutput(so);
    for (int j = 0; j < m; ++j) {
        // fb_next[j] = SO ? sorted[m + j] : sorted[j], one MUX per bit:
        // (SO AND hi) OR (NOT SO AND lo).
        const aqfp::NodeId hi = net.addGate(
            aqfp::CellType::And2, so, wires[static_cast<std::size_t>(m + j)]);
        const aqfp::NodeId lo = net.addGateNeg(
            aqfp::CellType::And2, so, true,
            wires[static_cast<std::size_t>(j)], false);
        net.markOutput(net.addGate(aqfp::CellType::Or2, hi, lo));
    }
    return net;
}

} // namespace aqfpsc::blocks
