#include "feature_extraction.h"

#include <cassert>

#include "feedback_unit.h"
#include "sc/apc.h"

namespace aqfpsc::blocks {

FeatureExtractionBlock::FeatureExtractionBlock(int m)
    : m_(m), effM_(m % 2 == 0 ? m + 1 : m)
{
    assert(m >= 1);
}

sc::Bitstream
FeatureExtractionBlock::run(const std::vector<sc::Bitstream> &products) const
{
    assert(static_cast<int>(products.size()) == m_);
    const std::size_t len = products[0].size();

    sc::ColumnCounts counts(len, effM_);
    for (const auto &p : products) {
        assert(p.size() == len);
        counts.add(p);
    }
    if (effM_ != m_)
        counts.add(sc::Bitstream::neutral(len));

    std::vector<int> col;
    counts.extract(col);

    FeatureFeedbackUnit unit(effM_);
    sc::Bitstream out(len);
    for (std::size_t i = 0; i < len; ++i) {
        if (unit.step(col[i]))
            out.set(i, true);
    }
    return out;
}

sc::Bitstream
FeatureExtractionBlock::runInnerProduct(
    const std::vector<sc::Bitstream> &x,
    const std::vector<sc::Bitstream> &w) const
{
    assert(static_cast<int>(x.size()) == m_ && x.size() == w.size());
    std::vector<sc::Bitstream> products;
    products.reserve(x.size());
    for (std::size_t j = 0; j < x.size(); ++j)
        products.push_back(x[j].xnorWith(w[j]));
    return run(products);
}

sc::Bitstream
FeatureExtractionBlock::runLiteral(const std::vector<sc::Bitstream> &products,
                                   sorting::SortKind kind) const
{
    assert(static_cast<int>(products.size()) == m_);
    const std::size_t len = products[0].size();
    const sc::Bitstream neutral = sc::Bitstream::neutral(len);

    const sorting::BitonicNetwork net =
        sorting::BitonicNetwork::sortThenMerge(effM_, effM_, kind);

    std::vector<bool> wires(static_cast<std::size_t>(2 * effM_), false);
    // Operating-point initialization: (M-1)/2 ones, already sorted.
    std::vector<bool> feedback(static_cast<std::size_t>(effM_), false);
    for (int j = 0; j < (effM_ - 1) / 2; ++j)
        feedback[static_cast<std::size_t>(j)] = true;
    sc::Bitstream out(len);

    const int out_pos = effM_ - 1; // bit M-1: out = (s >= M)
    for (std::size_t i = 0; i < len; ++i) {
        for (int j = 0; j < m_; ++j)
            wires[static_cast<std::size_t>(j)] = products
                [static_cast<std::size_t>(j)].get(i);
        if (effM_ != m_)
            wires[static_cast<std::size_t>(m_)] = neutral.get(i);
        for (int j = 0; j < effM_; ++j)
            wires[static_cast<std::size_t>(effM_ + j)] =
                feedback[static_cast<std::size_t>(j)];

        net.apply(wires);

        const bool so = wires[static_cast<std::size_t>(out_pos)];
        if (so)
            out.set(i, true);
        // Output-selected feedback slice (offset-accumulator semantics):
        // consume the emitted one when SO = 1.
        const int fb_lo = so ? (effM_ + 1) / 2 : (effM_ - 1) / 2;
        for (int j = 0; j < effM_; ++j)
            feedback[static_cast<std::size_t>(j)] =
                wires[static_cast<std::size_t>(fb_lo + j)];
    }
    return out;
}

aqfp::Netlist
FeatureExtractionBlock::buildNetlist(int m, sorting::SortKind kind,
                                     bool with_multipliers)
{
    assert(m >= 1);
    const int eff_m = m % 2 == 0 ? m + 1 : m;

    aqfp::Netlist net;
    std::vector<aqfp::NodeId> wires(static_cast<std::size_t>(2 * eff_m));

    if (with_multipliers) {
        std::vector<aqfp::NodeId> x(static_cast<std::size_t>(m));
        std::vector<aqfp::NodeId> w(static_cast<std::size_t>(m));
        for (int j = 0; j < m; ++j)
            x[static_cast<std::size_t>(j)] = net.addInput();
        for (int j = 0; j < m; ++j)
            w[static_cast<std::size_t>(j)] = net.addInput();
        for (int j = 0; j < m; ++j)
            wires[static_cast<std::size_t>(j)] =
                net.addXnor(x[static_cast<std::size_t>(j)],
                            w[static_cast<std::size_t>(j)]);
    } else {
        for (int j = 0; j < m; ++j)
            wires[static_cast<std::size_t>(j)] = net.addInput();
    }
    if (eff_m != m)
        wires[static_cast<std::size_t>(m)] = net.addInput(); // neutral
    for (int j = 0; j < eff_m; ++j)
        wires[static_cast<std::size_t>(eff_m + j)] = net.addInput(); // fb

    const sorting::BitonicNetwork sorter =
        sorting::BitonicNetwork::sortThenMerge(eff_m, eff_m, kind);
    for (const auto &stage : sorter.stages()) {
        for (const auto &op : stage) {
            auto &wa = wires[static_cast<std::size_t>(op.a)];
            auto &wb = wires[static_cast<std::size_t>(op.b)];
            if (op.kind == sorting::OpKind::CompareExchange) {
                const aqfp::NodeId mx =
                    net.addGate(aqfp::CellType::Or2, wa, wb);
                const aqfp::NodeId mn =
                    net.addGate(aqfp::CellType::And2, wa, wb);
                wa = mx;
                wb = mn;
            } else {
                auto &wc = wires[static_cast<std::size_t>(op.c)];
                // Three-input sorter cell: OR3 max, MAJ3 median, AND3 min
                // (OR3/AND3 decompose into two 2-input AQFP cells).
                const aqfp::NodeId mx = net.addGate(
                    aqfp::CellType::Or2,
                    net.addGate(aqfp::CellType::Or2, wa, wb), wc);
                const aqfp::NodeId md =
                    net.addGate(aqfp::CellType::Maj3, wa, wb, wc);
                const aqfp::NodeId mn = net.addGate(
                    aqfp::CellType::And2,
                    net.addGate(aqfp::CellType::And2, wa, wb), wc);
                wa = mx;
                wb = md;
                wc = mn;
            }
        }
    }

    // SO = sorted bit M-1 (out = s >= M); feedback slice selected by SO
    // between the consume-one window [(M+1)/2 ..) and the keep window
    // [(M-1)/2 ..) -- one MUX per feedback bit, as in the pooling block.
    const aqfp::NodeId so = wires[static_cast<std::size_t>(eff_m - 1)];
    net.markOutput(so);
    const int hi_lo = (eff_m + 1) / 2;
    const int lo_lo = (eff_m - 1) / 2;
    for (int j = 0; j < eff_m; ++j) {
        const aqfp::NodeId hi = net.addGate(
            aqfp::CellType::And2, so,
            wires[static_cast<std::size_t>(hi_lo + j)]);
        const aqfp::NodeId lo = net.addGateNeg(
            aqfp::CellType::And2, so, true,
            wires[static_cast<std::size_t>(lo_lo + j)], false);
        net.markOutput(net.addGate(aqfp::CellType::Or2, hi, lo));
    }
    return net;
}

} // namespace aqfpsc::blocks
