/**
 * @file
 * Stochastic-number-generator hardware block (Sec. 4.1, Figs. 7-9).
 *
 * One AQFP SNG = an n-bit true RNG (n buffer-equivalent cells at 2 JJs
 * each, thanks to the thermal-noise RNG of Fig. 7) + an n-bit magnitude
 * comparator emitting (random < code) each cycle.  A bank of SNGs shares
 * its RNG bits through the 4-way RNG matrix of Fig. 8, cutting RNG cost
 * per generated number from n cells to n/4.
 *
 * The functional counterpart lives in sc::SngBank; this header provides
 * the gate-level comparator netlist and the bank-level JJ accounting used
 * by the Table 4 bench.
 */

#ifndef AQFPSC_BLOCKS_SNG_BLOCK_H
#define AQFPSC_BLOCKS_SNG_BLOCK_H

#include "aqfp/energy_model.h"
#include "aqfp/netlist.h"

namespace aqfpsc::blocks {

/**
 * Build an n-bit magnitude comparator netlist: output = (r < b), where
 * r[0..n) are the RNG bits (LSB first) and b[0..n) the binary code bits.
 * Tree construction of (lt, eq) pairs, depth O(log n).
 *
 * Primary inputs: r[0..n), then b[0..n).  Primary output: lt.
 */
aqfp::Netlist buildComparatorNetlist(int n);

/** JJ accounting for a bank of SNGs. */
struct SngBankCost
{
    int outputs = 0;        ///< number of streams generated in parallel
    int rngBits = 0;        ///< code / random-number width
    long long rngJj = 0;    ///< JJs spent on true-RNG cells
    long long comparatorJj = 0; ///< JJs spent on comparators (legalized)
    int depthPhases = 0;    ///< comparator pipeline depth
    long long totalJj() const { return rngJj + comparatorJj; }
};

/**
 * Cost of a bank generating @p outputs streams from @p rng_bits -bit
 * codes.
 *
 * @param shared_matrix When true, RNG bits come from 4-way shared
 *        RNG matrices (Fig. 8): matrices of dimension d (rng_bits rounded
 *        up to odd) provide 4d numbers from d*d unit RNGs.  When false,
 *        every SNG owns rng_bits private unit RNGs.
 */
SngBankCost analyzeSngBank(int outputs, int rng_bits,
                           bool shared_matrix = true);

} // namespace aqfpsc::blocks

#endif // AQFPSC_BLOCKS_SNG_BLOCK_H
