#include "categorization.h"

#include <cassert>

namespace aqfpsc::blocks {

namespace {

/** Word-wise 3-input majority. */
std::uint64_t
majWord(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return (a & b) | (a & c) | (b & c);
}

} // namespace

CategorizationBlock::CategorizationBlock(int k) : k_(k)
{
    assert(k >= 1);
}

int
CategorizationBlock::chainLength() const
{
    if (k_ == 1)
        return 0;
    const int padded = k_ % 2 == 0 ? k_ + 1 : k_;
    return (padded - 1) / 2;
}

sc::Bitstream
CategorizationBlock::run(const std::vector<sc::Bitstream> &products) const
{
    assert(static_cast<int>(products.size()) == k_);
    const std::size_t len = products[0].size();
    for ([[maybe_unused]] const auto &p : products)
        assert(p.size() == len);

    if (k_ == 1)
        return products[0];

    std::vector<const sc::Bitstream *> ins;
    ins.reserve(static_cast<std::size_t>(k_) + 1);
    for (const auto &p : products)
        ins.push_back(&p);
    sc::Bitstream neutral;
    if (k_ % 2 == 0) {
        neutral = sc::Bitstream::neutral(len);
        ins.push_back(&neutral);
    }

    sc::Bitstream acc(len);
    for (std::size_t w = 0; w < acc.wordCount(); ++w) {
        std::uint64_t a =
            majWord(ins[0]->word(w), ins[1]->word(w), ins[2]->word(w));
        for (std::size_t j = 3; j + 1 < ins.size(); j += 2)
            a = majWord(a, ins[j]->word(w), ins[j + 1]->word(w));
        acc.setWord(w, a);
    }
    return acc;
}

sc::Bitstream
CategorizationBlock::runInnerProduct(const std::vector<sc::Bitstream> &x,
                                     const std::vector<sc::Bitstream> &w) const
{
    assert(static_cast<int>(x.size()) == k_ && x.size() == w.size());
    std::vector<sc::Bitstream> products;
    products.reserve(x.size());
    for (std::size_t j = 0; j < x.size(); ++j)
        products.push_back(x[j].xnorWith(w[j]));
    return run(products);
}

aqfp::Netlist
CategorizationBlock::buildNetlist(int k, bool with_multipliers)
{
    assert(k >= 1);
    aqfp::Netlist net;

    std::vector<aqfp::NodeId> products(static_cast<std::size_t>(k));
    if (with_multipliers) {
        std::vector<aqfp::NodeId> x(static_cast<std::size_t>(k));
        std::vector<aqfp::NodeId> w(static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j)
            x[static_cast<std::size_t>(j)] = net.addInput();
        for (int j = 0; j < k; ++j)
            w[static_cast<std::size_t>(j)] = net.addInput();
        for (int j = 0; j < k; ++j)
            products[static_cast<std::size_t>(j)] =
                net.addXnor(x[static_cast<std::size_t>(j)],
                            w[static_cast<std::size_t>(j)]);
    } else {
        for (int j = 0; j < k; ++j)
            products[static_cast<std::size_t>(j)] = net.addInput();
    }
    if (k % 2 == 0 && k > 1)
        products.push_back(net.addInput()); // neutral padding stream

    if (products.size() == 1) {
        net.markOutput(products[0]);
        return net;
    }

    aqfp::NodeId acc = net.addGate(aqfp::CellType::Maj3, products[0],
                                   products[1], products[2]);
    for (std::size_t j = 3; j + 1 < products.size(); j += 2)
        acc = net.addGate(aqfp::CellType::Maj3, acc, products[j],
                          products[j + 1]);
    net.markOutput(acc);
    return net;
}

} // namespace aqfpsc::blocks
