#include "sng_block.h"

#include <cassert>
#include <vector>

#include "aqfp/passes.h"

namespace aqfpsc::blocks {

aqfp::Netlist
buildComparatorNetlist(int n)
{
    assert(n >= 1);
    aqfp::Netlist net;
    std::vector<aqfp::NodeId> r(static_cast<std::size_t>(n));
    std::vector<aqfp::NodeId> b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        r[static_cast<std::size_t>(i)] = net.addInput();
    for (int i = 0; i < n; ++i)
        b[static_cast<std::size_t>(i)] = net.addInput();

    // Per-bit primitives: lt_i = ~r_i & b_i, eq_i = ~(r_i ^ b_i).
    struct LtEq
    {
        aqfp::NodeId lt;
        aqfp::NodeId eq;
    };
    std::vector<LtEq> terms(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const aqfp::NodeId ri = r[static_cast<std::size_t>(i)];
        const aqfp::NodeId bi = b[static_cast<std::size_t>(i)];
        terms[static_cast<std::size_t>(i)].lt =
            net.addGateNeg(aqfp::CellType::And2, ri, true, bi, false);
        terms[static_cast<std::size_t>(i)].eq = net.addXnor(ri, bi);
    }

    // Reduce MSB-first: combine(hi, lo) = {hi.lt | (hi.eq & lo.lt),
    // hi.eq & lo.eq}.  Balanced tree over bit indices n-1 .. 0.
    std::vector<LtEq> level(terms.rbegin(), terms.rend()); // MSB first
    while (level.size() > 1) {
        std::vector<LtEq> next;
        next.reserve((level.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            const LtEq hi = level[i];
            const LtEq lo = level[i + 1];
            LtEq c;
            c.lt = net.addGate(
                aqfp::CellType::Or2, hi.lt,
                net.addGate(aqfp::CellType::And2, hi.eq, lo.lt));
            c.eq = net.addGate(aqfp::CellType::And2, hi.eq, lo.eq);
            next.push_back(c);
        }
        if (level.size() % 2 == 1)
            next.push_back(level.back());
        level.swap(next);
    }
    net.markOutput(level[0].lt);
    return net;
}

SngBankCost
analyzeSngBank(int outputs, int rng_bits, bool shared_matrix)
{
    assert(outputs >= 1 && rng_bits >= 3);
    SngBankCost cost;
    cost.outputs = outputs;
    cost.rngBits = rng_bits;

    if (shared_matrix) {
        // A d x d matrix (d = rng_bits rounded up to odd) feeds 4d SNGs
        // with d-bit random numbers at 2 JJ per unit RNG.
        const int d = rng_bits % 2 == 0 ? rng_bits + 1 : rng_bits;
        const int per_matrix = 4 * d;
        const int matrices = (outputs + per_matrix - 1) / per_matrix;
        cost.rngJj = static_cast<long long>(matrices) * d * d * 2;
    } else {
        cost.rngJj = static_cast<long long>(outputs) * rng_bits * 2;
    }

    const aqfp::Netlist comparator =
        aqfp::legalize(buildComparatorNetlist(rng_bits));
    const aqfp::HardwareCost comp = aqfp::analyzeNetlist(comparator);
    cost.comparatorJj = comp.jj * outputs;
    cost.depthPhases = comp.depthPhases;
    return cost;
}

} // namespace aqfpsc::blocks
