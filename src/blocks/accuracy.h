/**
 * @file
 * Monte-Carlo accuracy measurements for the proposed blocks.
 *
 * These drive the reproductions of Table 1 (feature-extraction absolute
 * inaccuracy), Table 2 (average-pooling absolute inaccuracy), Table 3
 * (categorization relative inaccuracy) and Fig. 13 (activation shape).
 * Inputs and weights are sampled uniformly from [-1, 1], quantized on the
 * SNG code grid, converted to independent bipolar streams, run through
 * the block, and compared against the exact arithmetic on the quantized
 * values.
 */

#ifndef AQFPSC_BLOCKS_ACCURACY_H
#define AQFPSC_BLOCKS_ACCURACY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aqfpsc::blocks {

/** Common Monte-Carlo options. */
struct AccuracyConfig
{
    int trials = 200;         ///< Monte-Carlo repetitions
    int rngBits = 10;         ///< SNG code width
    std::uint64_t seed = 42;  ///< base seed
    /**
     * Weight draw scale: weights ~ U[-s, s].  0 selects the
     * "active-region" scale 2/sqrt(M) that concentrates the
     * pre-activation sum inside the clip range; 1 draws full-range
     * weights (sums then saturate for all but the smallest M).
     */
    double weightScale = 0.0;
};

/** Reference function the feature-extraction error is measured against. */
enum class FeatureReference
{
    ClippedSum, ///< ideal clip(sum, -1, 1) of Eq. (1) -- the paper's metric
    FittedTanh, ///< the block's fitted transfer curve tanh(0.8 sum)
};

/**
 * Absolute inaccuracy of the feature-extraction block (Table 1):
 * mean |value(SO) - ref(sum_j x_j w_j)| over random x, w.  Against
 * ClippedSum the result includes the block's inherent knee softening;
 * against FittedTanh it isolates the stochastic (1/sqrt(N)) error.
 */
double
measureFeatureExtractionError(int m, std::size_t stream_len,
                              const AccuracyConfig &cfg = {},
                              FeatureReference ref =
                                  FeatureReference::ClippedSum);

/**
 * Absolute inaccuracy of the average-pooling block (Table 2):
 * mean |value(SO) - mean_j(x_j)| over random x.
 */
double measurePoolingError(int m, std::size_t stream_len,
                           const AccuracyConfig &cfg = {});

/**
 * Relative top-1 inaccuracy of the categorization block (Table 3):
 * ten categorization outputs share one random input vector; the metric is
 * the mean relative deviation (fraction of the [-1, 1] output range) of
 * the SC value of the software-top-1 output from its long-stream
 * reference value.  Mirrors the paper's "relative difference between the
 * highest output value in software and in SC domain".
 */
double measureCategorizationError(int k, std::size_t stream_len,
                                  int num_outputs = 10,
                                  std::size_t reference_len = 32768,
                                  const AccuracyConfig &cfg = {});

/**
 * Ranking-fidelity metric for the categorization block (Table 3's
 * operational claim): the largest software relative margin
 * (s_top1 - s_top2) / |s_top1| at which the majority chain still
 * mis-ranks the top two classes.  A result of r means: whenever the true
 * top-1 leads by more than r, the chain classified correctly in every
 * trial.  Returns one value per requested stream length.
 */
std::vector<double>
measureCategorizationFlipMargin(int k,
                                const std::vector<std::size_t> &lengths,
                                int num_outputs = 10,
                                const AccuracyConfig &cfg = {});

/**
 * Row variant of measureCategorizationError: evaluates all stream
 * lengths against one shared long-stream reference per trial, so the
 * expensive reference streams are generated once per trial instead of
 * once per (length, trial) pair.
 */
std::vector<double>
measureCategorizationErrorRow(int k, const std::vector<std::size_t> &lengths,
                              int num_outputs = 10,
                              std::size_t reference_len = 32768,
                              const AccuracyConfig &cfg = {});

/**
 * Fig. 13: sweep the true pre-activation sum z over [lo, hi] and measure
 * the mean block output value; the curve is the clipped identity in the
 * bipolar domain, i.e. a shifted clipped ReLU in the ones-count domain.
 * @return pairs (z, mean value(SO)).
 */
std::vector<std::pair<double, double>>
measureActivationShape(int m, std::size_t stream_len, double lo, double hi,
                       int points, const AccuracyConfig &cfg = {});

} // namespace aqfpsc::blocks

#endif // AQFPSC_BLOCKS_ACCURACY_H
