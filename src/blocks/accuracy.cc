#include "accuracy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "avg_pooling.h"
#include "categorization.h"
#include "feature_extraction.h"
#include "sc/sng.h"

namespace aqfpsc::blocks {

namespace {

/**
 * Draw a bipolar value uniform in [-scale, scale], already snapped to the
 * SNG code grid so the exact arithmetic and the streams agree.
 */
double
drawQuantized(sc::RandomSource &rng, double scale, int bits)
{
    const double raw = (2.0 * rng.nextDouble() - 1.0) * scale;
    return sc::codeToBipolar(sc::quantizeBipolar(raw, bits), bits);
}

/**
 * Weight scale keeping the pre-activation sum in the active region of
 * the clipped activation: with x, w ~ U[-1, 1] * scale the sum of m
 * products has standard deviation ~(2/3) when scale = 2/sqrt(m), so the
 * block's error is not hidden by saturation (see EXPERIMENTS.md).
 */
double
activeRegionScale(int m)
{
    return std::min(1.0, 2.0 / std::sqrt(static_cast<double>(m)));
}

} // namespace

double
measureFeatureExtractionError(int m, std::size_t stream_len,
                              const AccuracyConfig &cfg,
                              FeatureReference ref)
{
    const FeatureExtractionBlock block(m);
    sc::Xoshiro256StarStar rng(cfg.seed);
    const double wscale =
        cfg.weightScale > 0.0 ? cfg.weightScale : activeRegionScale(m);

    double total = 0.0;
    for (int t = 0; t < cfg.trials; ++t) {
        std::vector<sc::Bitstream> x, w;
        x.reserve(static_cast<std::size_t>(m));
        w.reserve(static_cast<std::size_t>(m));
        double sum = 0.0;
        for (int j = 0; j < m; ++j) {
            const double xv = drawQuantized(rng, 1.0, cfg.rngBits);
            const double wv = drawQuantized(rng, wscale, cfg.rngBits);
            sum += xv * wv;
            x.push_back(sc::encodeBipolar(xv, cfg.rngBits, stream_len, rng));
            w.push_back(sc::encodeBipolar(wv, cfg.rngBits, stream_len, rng));
        }
        const double ideal = ref == FeatureReference::ClippedSum
                                 ? std::clamp(sum, -1.0, 1.0)
                                 : std::tanh(0.8 * sum);
        const double got = block.runInnerProduct(x, w).bipolarValue();
        total += std::abs(got - ideal);
    }
    return total / cfg.trials;
}

double
measurePoolingError(int m, std::size_t stream_len, const AccuracyConfig &cfg)
{
    const AvgPoolingBlock block(m);
    sc::Xoshiro256StarStar rng(cfg.seed);

    double total = 0.0;
    for (int t = 0; t < cfg.trials; ++t) {
        std::vector<sc::Bitstream> in;
        in.reserve(static_cast<std::size_t>(m));
        double sum = 0.0;
        for (int j = 0; j < m; ++j) {
            const double v = drawQuantized(rng, 1.0, cfg.rngBits);
            sum += v;
            in.push_back(sc::encodeBipolar(v, cfg.rngBits, stream_len, rng));
        }
        const double ideal = sum / m;
        const double got = block.run(in).bipolarValue();
        total += std::abs(got - ideal);
    }
    return total / cfg.trials;
}

double
measureCategorizationError(int k, std::size_t stream_len, int num_outputs,
                           std::size_t reference_len,
                           const AccuracyConfig &cfg)
{
    const CategorizationBlock block(k);
    sc::Xoshiro256StarStar rng(cfg.seed);
    const double wscale =
        cfg.weightScale > 0.0 ? cfg.weightScale : activeRegionScale(k);

    double total = 0.0;
    for (int t = 0; t < cfg.trials; ++t) {
        // One shared input vector; per-output weight vectors.
        std::vector<double> xv(static_cast<std::size_t>(k));
        for (auto &v : xv)
            v = drawQuantized(rng, 1.0, cfg.rngBits);

        double best_score = -1e30;
        std::vector<double> top_w;
        for (int o = 0; o < num_outputs; ++o) {
            std::vector<double> wv(static_cast<std::size_t>(k));
            double score = 0.0;
            for (int j = 0; j < k; ++j) {
                wv[static_cast<std::size_t>(j)] =
                    drawQuantized(rng, wscale, cfg.rngBits);
                score += xv[static_cast<std::size_t>(j)] *
                         wv[static_cast<std::size_t>(j)];
            }
            if (score > best_score) {
                best_score = score;
                top_w = std::move(wv);
            }
        }

        // SC value of the software-top-1 output at the evaluated stream
        // length vs a long-stream reference with fresh streams.
        auto chain_value = [&](std::size_t len) {
            std::vector<sc::Bitstream> x, w;
            x.reserve(static_cast<std::size_t>(k));
            w.reserve(static_cast<std::size_t>(k));
            for (int j = 0; j < k; ++j) {
                x.push_back(sc::encodeBipolar(
                    xv[static_cast<std::size_t>(j)], cfg.rngBits, len, rng));
                w.push_back(sc::encodeBipolar(
                    top_w[static_cast<std::size_t>(j)], cfg.rngBits, len,
                    rng));
            }
            return block.runInnerProduct(x, w).bipolarValue();
        };
        const double v_eval = chain_value(stream_len);
        const double v_ref = chain_value(reference_len);
        // Fraction of the [-1, 1] output range.
        total += std::abs(v_eval - v_ref) / 2.0;
    }
    return total / cfg.trials;
}

std::vector<double>
measureCategorizationFlipMargin(int k,
                                const std::vector<std::size_t> &lengths,
                                int num_outputs, const AccuracyConfig &cfg)
{
    const CategorizationBlock block(k);
    sc::Xoshiro256StarStar rng(cfg.seed);
    const double wscale =
        cfg.weightScale > 0.0 ? cfg.weightScale : activeRegionScale(k);

    std::vector<double> worst(lengths.size(), 0.0);
    for (int t = 0; t < cfg.trials; ++t) {
        std::vector<double> xv(static_cast<std::size_t>(k));
        for (auto &v : xv)
            v = drawQuantized(rng, 1.0, cfg.rngBits);

        std::vector<std::vector<double>> wv(
            static_cast<std::size_t>(num_outputs));
        std::vector<double> scores(static_cast<std::size_t>(num_outputs),
                                   0.0);
        for (int o = 0; o < num_outputs; ++o) {
            wv[static_cast<std::size_t>(o)].resize(
                static_cast<std::size_t>(k));
            for (int j = 0; j < k; ++j) {
                const double v = drawQuantized(rng, wscale, cfg.rngBits);
                wv[static_cast<std::size_t>(o)]
                  [static_cast<std::size_t>(j)] = v;
                scores[static_cast<std::size_t>(o)] +=
                    xv[static_cast<std::size_t>(j)] * v;
            }
        }
        int top1 = 0, top2 = 1;
        if (scores[1] > scores[0])
            std::swap(top1, top2);
        for (int o = 2; o < num_outputs; ++o) {
            if (scores[static_cast<std::size_t>(o)] >
                scores[static_cast<std::size_t>(top1)]) {
                top2 = top1;
                top1 = o;
            } else if (scores[static_cast<std::size_t>(o)] >
                       scores[static_cast<std::size_t>(top2)]) {
                top2 = o;
            }
        }
        const double margin =
            (scores[static_cast<std::size_t>(top1)] -
             scores[static_cast<std::size_t>(top2)]) /
            (std::abs(scores[static_cast<std::size_t>(top1)]) + 1e-12);

        for (std::size_t li = 0; li < lengths.size(); ++li) {
            const std::size_t len = lengths[li];
            std::vector<sc::Bitstream> x;
            x.reserve(static_cast<std::size_t>(k));
            for (int j = 0; j < k; ++j)
                x.push_back(sc::encodeBipolar(
                    xv[static_cast<std::size_t>(j)], cfg.rngBits, len,
                    rng));
            double best = -2.0;
            int sc_top = 0;
            for (int o = 0; o < num_outputs; ++o) {
                std::vector<sc::Bitstream> w;
                w.reserve(static_cast<std::size_t>(k));
                for (int j = 0; j < k; ++j)
                    w.push_back(sc::encodeBipolar(
                        wv[static_cast<std::size_t>(o)]
                          [static_cast<std::size_t>(j)],
                        cfg.rngBits, len, rng));
                const double v =
                    block.runInnerProduct(x, w).bipolarValue();
                if (v > best) {
                    best = v;
                    sc_top = o;
                }
            }
            if (sc_top != top1)
                worst[li] = std::max(worst[li], margin);
        }
    }
    return worst;
}

std::vector<double>
measureCategorizationErrorRow(int k, const std::vector<std::size_t> &lengths,
                              int num_outputs, std::size_t reference_len,
                              const AccuracyConfig &cfg)
{
    const CategorizationBlock block(k);
    sc::Xoshiro256StarStar rng(cfg.seed);
    const double wscale =
        cfg.weightScale > 0.0 ? cfg.weightScale : activeRegionScale(k);

    std::vector<double> totals(lengths.size(), 0.0);
    for (int t = 0; t < cfg.trials; ++t) {
        std::vector<double> xv(static_cast<std::size_t>(k));
        for (auto &v : xv)
            v = drawQuantized(rng, 1.0, cfg.rngBits);

        double best_score = -1e30;
        std::vector<double> top_w;
        for (int o = 0; o < num_outputs; ++o) {
            std::vector<double> wv(static_cast<std::size_t>(k));
            double score = 0.0;
            for (int j = 0; j < k; ++j) {
                wv[static_cast<std::size_t>(j)] =
                    drawQuantized(rng, wscale, cfg.rngBits);
                score += xv[static_cast<std::size_t>(j)] *
                         wv[static_cast<std::size_t>(j)];
            }
            if (score > best_score) {
                best_score = score;
                top_w = std::move(wv);
            }
        }

        auto chain_value = [&](std::size_t len) {
            std::vector<sc::Bitstream> x, w;
            x.reserve(static_cast<std::size_t>(k));
            w.reserve(static_cast<std::size_t>(k));
            for (int j = 0; j < k; ++j) {
                x.push_back(sc::encodeBipolar(
                    xv[static_cast<std::size_t>(j)], cfg.rngBits, len, rng));
                w.push_back(sc::encodeBipolar(
                    top_w[static_cast<std::size_t>(j)], cfg.rngBits, len,
                    rng));
            }
            return block.runInnerProduct(x, w).bipolarValue();
        };

        // Exact expected chain value via the bipolar majority recursion
        // maj(a, p, q) = (a + p + q - a p q) / 2 over the product values
        // (streams are independent), mirroring CategorizationBlock::run's
        // order including the neutral pad.
        std::vector<double> u;
        u.reserve(static_cast<std::size_t>(k) + 1);
        for (int j = 0; j < k; ++j)
            u.push_back(xv[static_cast<std::size_t>(j)] *
                        top_w[static_cast<std::size_t>(j)]);
        if (k % 2 == 0 && k > 1)
            u.push_back(0.0);
        double v_ref;
        if (u.size() == 1) {
            v_ref = u[0];
        } else {
            v_ref = 0.5 * (u[0] + u[1] + u[2] - u[0] * u[1] * u[2]);
            for (std::size_t j = 3; j + 1 < u.size(); j += 2)
                v_ref = 0.5 * (v_ref + u[j] + u[j + 1] -
                               v_ref * u[j] * u[j + 1]);
        }
        (void)reference_len;
        for (std::size_t li = 0; li < lengths.size(); ++li)
            totals[li] += std::abs(chain_value(lengths[li]) - v_ref) / 2.0;
    }
    for (auto &v : totals)
        v /= cfg.trials;
    return totals;
}

std::vector<std::pair<double, double>>
measureActivationShape(int m, std::size_t stream_len, double lo, double hi,
                       int points, const AccuracyConfig &cfg)
{
    assert(points >= 2);
    const FeatureExtractionBlock block(m);
    sc::Xoshiro256StarStar rng(cfg.seed);

    std::vector<std::pair<double, double>> curve;
    curve.reserve(static_cast<std::size_t>(points));
    for (int p = 0; p < points; ++p) {
        const double z = lo + (hi - lo) * p / (points - 1);
        const double per_product = std::clamp(z / m, -1.0, 1.0);
        double mean = 0.0;
        for (int t = 0; t < cfg.trials; ++t) {
            std::vector<sc::Bitstream> products;
            products.reserve(static_cast<std::size_t>(m));
            for (int j = 0; j < m; ++j) {
                products.push_back(sc::encodeBipolar(
                    per_product, cfg.rngBits, stream_len, rng));
            }
            mean += block.run(products).bipolarValue();
        }
        curve.emplace_back(z, mean / cfg.trials);
    }
    return curve;
}

} // namespace aqfpsc::blocks
