/**
 * @file
 * InferenceSession façade and EngineOptions validation: the accept /
 * reject table, lazy per-backend engine compilation, equivalence with
 * the direct engine path, and the single source of truth for worker
 * threads (config threads, per-call override, deprecated forwarders).
 */

#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "core/session.h"
#include "data/digits.h"
#include "nn/layers.h"

namespace aqfpsc::core {
namespace {

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(EngineOptions, ValidateAcceptTable)
{
    EXPECT_TRUE(EngineOptions{}.validate().empty());

    EngineOptions o;
    o.backend = "float-ref";
    o.streamLen = EngineOptions::kMinStreamLen;
    o.rngBits = 1;
    o.threads = 0;
    EXPECT_TRUE(o.validate().empty());

    o.backend = "cmos-apc";
    o.streamLen = EngineOptions::kMaxStreamLen;
    o.rngBits = EngineOptions::kMaxRngBits;
    o.threads = EngineOptions::kMaxThreads;
    o.approximateApc = true;
    EXPECT_TRUE(o.validate().empty());

    // Non-multiple-of-64 stream lengths are legal (tail-clean streams).
    o.streamLen = 1000;
    EXPECT_TRUE(o.validate().empty());
}

TEST(EngineOptions, ValidateRejectTable)
{
    struct Case
    {
        const char *name;
        EngineOptions opts;
        const char *expect; ///< substring of the documented message
    };
    std::vector<Case> cases;
    {
        Case c{"unknown backend", {}, "unknown backend 'quantum'"};
        c.opts.backend = "quantum";
        cases.push_back(c);
    }
    {
        Case c{"streamLen too small", {}, "streamLen 4 out of"};
        c.opts.streamLen = 4;
        cases.push_back(c);
    }
    {
        Case c{"streamLen too large", {}, "exhaust memory"};
        c.opts.streamLen = EngineOptions::kMaxStreamLen + 1;
        cases.push_back(c);
    }
    {
        Case c{"rngBits zero", {}, "rngBits 0 out of"};
        c.opts.rngBits = 0;
        cases.push_back(c);
    }
    {
        Case c{"rngBits too wide", {}, "rngBits 31 out of"};
        c.opts.rngBits = 31;
        cases.push_back(c);
    }
    {
        Case c{"negative threads", {}, "threads -1 out of"};
        c.opts.threads = -1;
        cases.push_back(c);
    }
    {
        Case c{"too many threads", {}, "threads 9999 out of"};
        c.opts.threads = 9999;
        cases.push_back(c);
    }
    for (const auto &c : cases) {
        const auto errors = c.opts.validate();
        ASSERT_EQ(errors.size(), 1u) << c.name;
        EXPECT_TRUE(contains(errors[0], c.expect))
            << c.name << ": " << errors[0];
    }

    // Unknown backends additionally list what IS registered.
    EngineOptions bad;
    bad.backend = "quantum";
    EXPECT_TRUE(contains(bad.validate()[0], "aqfp-sorter"));

    // Errors accumulate instead of stopping at the first.
    bad.streamLen = 0;
    bad.rngBits = -3;
    bad.threads = -1;
    EXPECT_EQ(bad.validate().size(), 4u);
}

TEST(Session, ConstructorRejectsInvalidOptions)
{
    EngineOptions opts;
    opts.backend = "quantum";
    try {
        InferenceSession session(buildTinyCnn(1), opts);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(contains(e.what(), "invalid EngineOptions"))
            << e.what();
        EXPECT_TRUE(contains(e.what(), "unknown backend 'quantum'"))
            << e.what();
    }
}

TEST(Session, FromZooRejectsUnknownModels)
{
    try {
        InferenceSession session = InferenceSession::fromZoo("mega");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(contains(e.what(), "unknown model 'mega'"))
            << e.what();
        EXPECT_TRUE(contains(e.what(), "tiny")) << e.what();
    }
}

TEST(Session, EnginesCompileLazilyPerBackend)
{
    EngineOptions opts;
    opts.streamLen = 256;
    const InferenceSession session(buildTinyCnn(3), opts);
    EXPECT_TRUE(session.compiledBackends().empty());

    const ScNetworkEngine &aqfp = session.engine();
    EXPECT_EQ(aqfp.backendName(), "aqfp-sorter");
    EXPECT_EQ(session.compiledBackends(),
              (std::vector<std::string>{"aqfp-sorter"}));

    const ScNetworkEngine &ref = session.engine("float-ref");
    EXPECT_EQ(ref.backendName(), "float-ref");
    EXPECT_EQ(session.compiledBackends(),
              (std::vector<std::string>{"aqfp-sorter", "float-ref"}));

    // Cached: the same engine object is returned, not a recompile.
    EXPECT_EQ(&session.engine(), &aqfp);
    EXPECT_EQ(&session.engine("float-ref"), &ref);

    EXPECT_THROW(session.engine("quantum"), std::invalid_argument);
}

TEST(Session, MatchesDirectEnginePathBitExactly)
{
    nn::Network net = buildTinyCnn(3);
    net.quantizeParams(10);
    const auto samples = data::generateDigits(6, 424);

    EngineOptions opts;
    opts.streamLen = 256;
    ScEngineConfig direct_cfg;
    direct_cfg.streamLen = 256;
    direct_cfg.backendName = "aqfp-sorter";
    const ScNetworkEngine direct(net, direct_cfg);
    const InferenceSession session(std::move(net), opts);

    const auto via_session = session.predict(samples);
    const auto via_engine = direct.predict(samples);
    ASSERT_EQ(via_session.size(), via_engine.size());
    for (std::size_t i = 0; i < via_session.size(); ++i) {
        EXPECT_EQ(via_session[i].label, via_engine[i].label);
        EXPECT_EQ(via_session[i].scores, via_engine[i].scores);
    }

    const ScPrediction one = session.infer(samples[0].image);
    EXPECT_EQ(one.scores, via_engine[0].scores);
}

TEST(Session, EvaluateStatsAndThreadOverridesAgree)
{
    nn::Network net = buildTinyCnn(3);
    const auto samples = data::generateDigits(8, 77);

    EngineOptions opts;
    opts.streamLen = 128;
    opts.threads = 2; // the single source of truth
    const InferenceSession session(std::move(net), opts);

    const ScEvalStats base = session.evaluate(samples);
    EXPECT_EQ(base.images, samples.size());

    // A per-call override changes the worker count, never the result.
    const ScEvalStats forced =
        session.evaluate(samples, {.threads = 1});
    EXPECT_EQ(forced.accuracy, base.accuracy);

    // The engine entry point rides the same code path.
    const ScNetworkEngine &engine = session.engine();
    EXPECT_EQ(engine.evaluate(samples, EvalOptions{}).accuracy,
              base.accuracy);

    const ScEvalStats limited = session.evaluate(samples, {.limit = 3});
    EXPECT_EQ(limited.images, 3u);
}

} // namespace
} // namespace aqfpsc::core
