/**
 * @file
 * Unit tests for the bitonic sorting networks.
 *
 * The zero-one principle says a comparator network that sorts every 0/1
 * input sorts every input; since the SC blocks only ever sort bits, the
 * exhaustive 0/1 checks here are definitive for the use case, and the
 * random integer checks additionally validate full sorting-network
 * behaviour.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sc/rng.h"
#include "sorting/bitonic.h"

namespace aqfpsc::sorting {
namespace {

bool
isSortedDescending(const std::vector<int> &v)
{
    return std::is_sorted(v.rbegin(), v.rend());
}

class SorterWidthTest
    : public ::testing::TestWithParam<std::tuple<int, SortKind>>
{
};

TEST_P(SorterWidthTest, ZeroOneExhaustive)
{
    const auto [n, kind] = GetParam();
    const BitonicNetwork net = BitonicNetwork::sorter(n, kind);
    EXPECT_EQ(net.width(), n);
    for (int pattern = 0; pattern < (1 << n); ++pattern) {
        std::vector<int> v(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            v[static_cast<std::size_t>(i)] = (pattern >> i) & 1;
        net.apply(v);
        ASSERT_TRUE(isSortedDescending(v))
            << "n=" << n << " pattern=" << pattern;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Exhaustive, SorterWidthTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12, 13),
                       ::testing::Values(SortKind::Generalized,
                                         SortKind::ThreeSorterCells)));

class SorterRandomTest
    : public ::testing::TestWithParam<std::tuple<int, SortKind>>
{
};

TEST_P(SorterRandomTest, RandomIntegers)
{
    const auto [n, kind] = GetParam();
    const BitonicNetwork net = BitonicNetwork::sorter(n, kind);
    sc::Xoshiro256StarStar rng(n * 7919);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<int> v(static_cast<std::size_t>(n));
        for (auto &x : v)
            x = static_cast<int>(rng.nextBits(16));
        std::vector<int> expect = v;
        std::sort(expect.rbegin(), expect.rend());
        net.apply(v);
        ASSERT_EQ(v, expect) << "n=" << n << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Random, SorterRandomTest,
    ::testing::Combine(::testing::Values(17, 25, 49, 64, 81, 100, 121),
                       ::testing::Values(SortKind::Generalized,
                                         SortKind::ThreeSorterCells)));

class SortThenMergeTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SortThenMergeTest, ExhaustiveColumnTimesSortedPrefix)
{
    // The feedback-block network: arbitrary fresh column + already
    // descending-sorted feedback of the same width.
    const int m = GetParam();
    const BitonicNetwork net = BitonicNetwork::sortThenMerge(m, m);
    for (int pattern = 0; pattern < (1 << m); ++pattern) {
        for (int fb_ones = 0; fb_ones <= m; ++fb_ones) {
            std::vector<int> v(static_cast<std::size_t>(2 * m), 0);
            int ones = fb_ones;
            for (int i = 0; i < m; ++i) {
                v[static_cast<std::size_t>(i)] = (pattern >> i) & 1;
                ones += (pattern >> i) & 1;
            }
            for (int i = 0; i < fb_ones; ++i)
                v[static_cast<std::size_t>(m + i)] = 1;
            net.apply(v);
            ASSERT_TRUE(isSortedDescending(v))
                << "m=" << m << " pattern=" << pattern
                << " fb=" << fb_ones;
            ASSERT_EQ(std::count(v.begin(), v.end(), 1), ones);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SortThenMergeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 11));

TEST(SortThenMerge, RandomLargeWidths)
{
    sc::Xoshiro256StarStar rng(31);
    for (int m : {25, 49, 81, 121}) {
        const BitonicNetwork net = BitonicNetwork::sortThenMerge(m, m);
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<int> v(static_cast<std::size_t>(2 * m), 0);
            for (int i = 0; i < m; ++i)
                v[static_cast<std::size_t>(i)] =
                    static_cast<int>(rng.nextBits(1));
            const int fb =
                static_cast<int>(rng.nextBits(16)) % (m + 1);
            for (int i = 0; i < fb; ++i)
                v[static_cast<std::size_t>(m + i)] = 1;
            net.apply(v);
            ASSERT_TRUE(isSortedDescending(v)) << "m=" << m;
        }
    }
}

TEST(BitonicNetwork, PowerOfTwoComparatorCount)
{
    // For n = 2^k, the bitonic sorter has n * k * (k + 1) / 4
    // compare-exchange units.
    for (int k = 1; k <= 6; ++k) {
        const int n = 1 << k;
        const BitonicNetwork net = BitonicNetwork::sorter(n);
        EXPECT_EQ(net.compareCount(), n * k * (k + 1) / 4) << "n=" << n;
    }
}

TEST(BitonicNetwork, PowerOfTwoDepth)
{
    // Depth = k * (k + 1) / 2 stages for n = 2^k.
    for (int k = 1; k <= 6; ++k) {
        const int n = 1 << k;
        const BitonicNetwork net = BitonicNetwork::sorter(n);
        EXPECT_EQ(net.depth(), k * (k + 1) / 2) << "n=" << n;
    }
}

TEST(BitonicNetwork, ThreeSorterCellsReduceOps)
{
    // For width 3 the generalized network needs 3 comparators in 3
    // stages; the paper's Sort3 cell does it in one op / one stage.
    const BitonicNetwork gen = BitonicNetwork::sorter(3,
                                                      SortKind::Generalized);
    const BitonicNetwork cells =
        BitonicNetwork::sorter(3, SortKind::ThreeSorterCells);
    EXPECT_EQ(gen.opCount(), 3);
    EXPECT_EQ(cells.opCount(), 1);
    EXPECT_EQ(cells.depth(), 1);
    EXPECT_LT(cells.depth(), gen.depth());
}

TEST(BitonicNetwork, ThreeSorterCellsNeverWorse)
{
    for (int n : {5, 9, 15, 21, 33, 49}) {
        const BitonicNetwork gen =
            BitonicNetwork::sorter(n, SortKind::Generalized);
        const BitonicNetwork cells =
            BitonicNetwork::sorter(n, SortKind::ThreeSorterCells);
        EXPECT_LE(cells.opCount(), gen.opCount()) << "n=" << n;
        EXPECT_LE(cells.depth(), gen.depth()) << "n=" << n;
    }
}

TEST(BitonicNetwork, StagesTouchDisjointWires)
{
    const BitonicNetwork net =
        BitonicNetwork::sorter(21, SortKind::ThreeSorterCells);
    for (const auto &stage : net.stages()) {
        std::vector<bool> used(21, false);
        for (const auto &op : stage) {
            for (int wire : {op.a, op.b, op.c}) {
                if (wire < 0)
                    continue;
                ASSERT_FALSE(used[static_cast<std::size_t>(wire)]);
                used[static_cast<std::size_t>(wire)] = true;
            }
        }
    }
}

TEST(BitonicNetwork, ApplyBoolMatchesApplyInt)
{
    const BitonicNetwork net = BitonicNetwork::sorter(10);
    sc::Xoshiro256StarStar rng(17);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<bool> vb(10);
        std::vector<int> vi(10);
        for (int i = 0; i < 10; ++i) {
            const bool bit = rng.nextBit();
            vb[static_cast<std::size_t>(i)] = bit;
            vi[static_cast<std::size_t>(i)] = bit ? 1 : 0;
        }
        net.apply(vb);
        net.apply(vi);
        for (int i = 0; i < 10; ++i)
            ASSERT_EQ(vb[static_cast<std::size_t>(i)],
                      vi[static_cast<std::size_t>(i)] != 0);
    }
}

} // namespace
} // namespace aqfpsc::sorting
