/**
 * @file
 * Gate-level equivalence tests: the AQFP netlists of the paper's blocks
 * must reproduce the functional models bit-exactly, cycle by cycle, with
 * the feedback loop closed externally -- before and after the full
 * legalization pipeline.
 */

#include <vector>

#include <gtest/gtest.h>

#include "aqfp/passes.h"
#include "aqfp/simulator.h"
#include "blocks/avg_pooling.h"
#include "blocks/categorization.h"
#include "blocks/feature_extraction.h"
#include "blocks/sng_block.h"
#include "sc/sng.h"

namespace aqfpsc::blocks {
namespace {

std::vector<sc::Bitstream>
randomStreams(int count, std::size_t len, std::uint64_t seed)
{
    sc::Xoshiro256StarStar rng(seed);
    std::vector<sc::Bitstream> streams;
    for (int j = 0; j < count; ++j) {
        streams.push_back(sc::encodeBipolar(2.0 * rng.nextDouble() - 1.0,
                                            8, len, rng));
    }
    return streams;
}

/**
 * Run a feature-extraction netlist cycle by cycle with the external
 * feedback loop closed, mirroring Algorithm 1's iteration.
 */
sc::Bitstream
simulateFeatureNetlist(const aqfp::Netlist &net, int m,
                       const std::vector<sc::Bitstream> &x,
                       const std::vector<sc::Bitstream> &w)
{
    const int eff_m = m % 2 == 0 ? m + 1 : m;
    const std::size_t len = x[0].size();
    const sc::Bitstream neutral = sc::Bitstream::neutral(len);

    // Operating-point initialization: (M-1)/2 ones, pre-sorted.
    std::vector<bool> feedback(static_cast<std::size_t>(eff_m), false);
    for (int j = 0; j < (eff_m - 1) / 2; ++j)
        feedback[static_cast<std::size_t>(j)] = true;
    sc::Bitstream out(len);
    for (std::size_t i = 0; i < len; ++i) {
        std::vector<bool> inputs;
        for (int j = 0; j < m; ++j)
            inputs.push_back(x[static_cast<std::size_t>(j)].get(i));
        for (int j = 0; j < m; ++j)
            inputs.push_back(w[static_cast<std::size_t>(j)].get(i));
        if (eff_m != m)
            inputs.push_back(neutral.get(i));
        for (int j = 0; j < eff_m; ++j)
            inputs.push_back(feedback[static_cast<std::size_t>(j)]);

        const auto outs = aqfp::evalCombinational(net, inputs);
        if (outs[0])
            out.set(i, true);
        for (int j = 0; j < eff_m; ++j)
            feedback[static_cast<std::size_t>(j)] =
                outs[static_cast<std::size_t>(1 + j)];
    }
    return out;
}

class FeatureNetlistTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FeatureNetlistTest, MatchesFunctionalModel)
{
    const int m = GetParam();
    const std::size_t len = 192;
    const auto x = randomStreams(m, len, 100 + m);
    const auto w = randomStreams(m, len, 200 + m);

    const FeatureExtractionBlock block(m);
    const sc::Bitstream expect = block.runInnerProduct(x, w);

    const aqfp::Netlist net = FeatureExtractionBlock::buildNetlist(m);
    ASSERT_TRUE(net.check());
    EXPECT_EQ(simulateFeatureNetlist(net, m, x, w), expect);
}

TEST_P(FeatureNetlistTest, LegalizedNetlistStillMatches)
{
    const int m = GetParam();
    const std::size_t len = 96;
    const auto x = randomStreams(m, len, 300 + m);
    const auto w = randomStreams(m, len, 400 + m);

    const FeatureExtractionBlock block(m);
    const sc::Bitstream expect = block.runInnerProduct(x, w);

    const aqfp::Netlist net =
        aqfp::legalize(FeatureExtractionBlock::buildNetlist(m));
    std::string err;
    ASSERT_TRUE(aqfp::checkLegalized(net, &err)) << err;
    EXPECT_EQ(simulateFeatureNetlist(net, m, x, w), expect);
}

TEST_P(FeatureNetlistTest, ThreeSorterCellVariantMatches)
{
    const int m = GetParam();
    const std::size_t len = 96;
    const auto x = randomStreams(m, len, 500 + m);
    const auto w = randomStreams(m, len, 600 + m);
    const FeatureExtractionBlock block(m);
    const aqfp::Netlist net = FeatureExtractionBlock::buildNetlist(
        m, sorting::SortKind::ThreeSorterCells);
    EXPECT_EQ(simulateFeatureNetlist(net, m, x, w),
              block.runInnerProduct(x, w));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FeatureNetlistTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 9));

TEST(FeatureNetlist, ProductOnlyVariant)
{
    const int m = 5;
    const std::size_t len = 128;
    const auto products = randomStreams(m, len, 42);
    const FeatureExtractionBlock block(m);
    const aqfp::Netlist net = FeatureExtractionBlock::buildNetlist(
        m, sorting::SortKind::Generalized, /*with_multipliers=*/false);

    std::vector<bool> feedback(static_cast<std::size_t>(m), false);
    for (int j = 0; j < (m - 1) / 2; ++j)
        feedback[static_cast<std::size_t>(j)] = true;
    sc::Bitstream out(len);
    for (std::size_t i = 0; i < len; ++i) {
        std::vector<bool> inputs;
        for (int j = 0; j < m; ++j)
            inputs.push_back(products[static_cast<std::size_t>(j)].get(i));
        for (int j = 0; j < m; ++j)
            inputs.push_back(feedback[static_cast<std::size_t>(j)]);
        const auto outs = aqfp::evalCombinational(net, inputs);
        if (outs[0])
            out.set(i, true);
        for (int j = 0; j < m; ++j)
            feedback[static_cast<std::size_t>(j)] =
                outs[static_cast<std::size_t>(1 + j)];
    }
    EXPECT_EQ(out, block.run(products));
}

TEST(FeatureNetlist, CSlowInterleavedHardwareLoop)
{
    // The real hardware closes the feedback loop through the pipeline
    // itself: with depth D phases (plus the input register tick), D + 1
    // independent streams interleave through one physical block, each
    // seeing exactly the Algorithm 1 iteration (DESIGN.md Sec. 5.2).
    // This test runs the legalized netlist in the phase-accurate
    // simulator with the loop physically closed and checks every
    // interleaved stream bit-exactly against the functional model.
    const int m = 5;
    const std::size_t len = 48; // logical cycles per stream
    const aqfp::Netlist net =
        aqfp::legalize(FeatureExtractionBlock::buildNetlist(m));
    const int depth = net.depth();
    const int ways = depth + 1; // interleave factor

    // Independent workloads, one per interleaved stream.
    std::vector<std::vector<sc::Bitstream>> xs, ws;
    std::vector<sc::Bitstream> expected;
    const FeatureExtractionBlock block(m);
    for (int s = 0; s < ways; ++s) {
        xs.push_back(randomStreams(m, len, 5000 + s));
        ws.push_back(randomStreams(m, len, 6000 + s));
        expected.push_back(block.runInnerProduct(xs.back(), ws.back()));
    }

    aqfp::PhaseAccurateSimulator sim(net);
    std::vector<sc::Bitstream> got(static_cast<std::size_t>(ways),
                                   sc::Bitstream(len));
    std::vector<bool> prev_outputs; // outputs observed last tick

    const long total_ticks = static_cast<long>(len) * ways + depth + 1;
    for (long t = 0; t < total_ticks; ++t) {
        const int s = static_cast<int>(t % ways);
        const long cycle = t / ways;

        std::vector<bool> inputs;
        if (cycle < static_cast<long>(len)) {
            for (int j = 0; j < m; ++j)
                inputs.push_back(xs[static_cast<std::size_t>(s)]
                                   [static_cast<std::size_t>(j)]
                                       .get(static_cast<std::size_t>(cycle)));
            for (int j = 0; j < m; ++j)
                inputs.push_back(ws[static_cast<std::size_t>(s)]
                                   [static_cast<std::size_t>(j)]
                                       .get(static_cast<std::size_t>(cycle)));
        } else {
            inputs.assign(static_cast<std::size_t>(2 * m), false);
        }
        // Feedback: the outputs that emerged last tick belong to this
        // stream's previous logical cycle (loop latency = ways ticks).
        if (t < ways) {
            // Warm-up: operating-point initialization, pre-sorted.
            for (int j = 0; j < m; ++j)
                inputs.push_back(j < (m - 1) / 2);
        } else {
            for (int j = 0; j < m; ++j)
                inputs.push_back(prev_outputs[static_cast<std::size_t>(1 + j)]);
        }

        const auto outs = sim.tick(inputs);
        prev_outputs.assign(outs.begin(), outs.end());

        // Outputs at tick t correspond to inputs from tick t - depth.
        const long src = t - depth;
        if (src >= 0) {
            const int src_stream = static_cast<int>(src % ways);
            const long src_cycle = src / ways;
            if (src_cycle < static_cast<long>(len) && outs[0]) {
                got[static_cast<std::size_t>(src_stream)].set(
                    static_cast<std::size_t>(src_cycle), true);
            }
        }
    }

    for (int s = 0; s < ways; ++s) {
        ASSERT_EQ(got[static_cast<std::size_t>(s)],
                  expected[static_cast<std::size_t>(s)])
            << "interleaved stream " << s;
    }
}

// --------------------------------------------------------- avg pooling

class PoolingNetlistTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PoolingNetlistTest, MatchesFunctionalModel)
{
    const int m = GetParam();
    const std::size_t len = 192;
    const auto ins = randomStreams(m, len, 700 + m);
    const AvgPoolingBlock block(m);
    const sc::Bitstream expect = block.run(ins);

    const aqfp::Netlist net =
        aqfp::legalize(AvgPoolingBlock::buildNetlist(m));
    std::string err;
    ASSERT_TRUE(aqfp::checkLegalized(net, &err)) << err;

    std::vector<bool> feedback(static_cast<std::size_t>(m), false);
    sc::Bitstream out(len);
    for (std::size_t i = 0; i < len; ++i) {
        std::vector<bool> inputs;
        for (int j = 0; j < m; ++j)
            inputs.push_back(ins[static_cast<std::size_t>(j)].get(i));
        for (int j = 0; j < m; ++j)
            inputs.push_back(feedback[static_cast<std::size_t>(j)]);
        const auto outs = aqfp::evalCombinational(net, inputs);
        if (outs[0])
            out.set(i, true);
        for (int j = 0; j < m; ++j)
            feedback[static_cast<std::size_t>(j)] =
                outs[static_cast<std::size_t>(1 + j)];
    }
    EXPECT_EQ(out, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolingNetlistTest,
                         ::testing::Values(1, 2, 3, 4, 5, 9));

// ------------------------------------------------------- categorization

class CategorizationNetlistTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CategorizationNetlistTest, MatchesFunctionalModel)
{
    const int k = GetParam();
    const std::size_t len = 256;
    const auto x = randomStreams(k, len, 800 + k);
    const auto w = randomStreams(k, len, 900 + k);
    const CategorizationBlock block(k);
    const sc::Bitstream expect = block.runInnerProduct(x, w);

    const aqfp::Netlist net =
        aqfp::legalize(CategorizationBlock::buildNetlist(k));
    std::string err;
    ASSERT_TRUE(aqfp::checkLegalized(net, &err)) << err;

    const sc::Bitstream neutral = sc::Bitstream::neutral(len);
    const bool padded = k % 2 == 0 && k > 1;
    sc::Bitstream out(len);
    for (std::size_t i = 0; i < len; ++i) {
        std::vector<bool> inputs;
        for (int j = 0; j < k; ++j)
            inputs.push_back(x[static_cast<std::size_t>(j)].get(i));
        for (int j = 0; j < k; ++j)
            inputs.push_back(w[static_cast<std::size_t>(j)].get(i));
        if (padded)
            inputs.push_back(neutral.get(i));
        if (aqfp::evalCombinational(net, inputs)[0])
            out.set(i, true);
    }
    EXPECT_EQ(out, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CategorizationNetlistTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 9, 15));

TEST(CategorizationNetlist, LinearGateGrowth)
{
    // The chain grows by one MAJ3 per two inputs (before legalization).
    const aqfp::Netlist a = CategorizationBlock::buildNetlist(
        101, /*with_multipliers=*/false);
    const aqfp::Netlist b = CategorizationBlock::buildNetlist(
        201, /*with_multipliers=*/false);
    EXPECT_EQ(a.countType(aqfp::CellType::Maj3), 50);
    EXPECT_EQ(b.countType(aqfp::CellType::Maj3), 100);
}

// ------------------------------------------------------------ SNG bank

TEST(ComparatorNetlist, ExhaustiveSmallWidths)
{
    for (int n : {1, 2, 3, 4, 5}) {
        const aqfp::Netlist net = buildComparatorNetlist(n);
        ASSERT_TRUE(net.check());
        for (int r = 0; r < (1 << n); ++r) {
            for (int b = 0; b < (1 << n); ++b) {
                std::vector<bool> in;
                for (int i = 0; i < n; ++i)
                    in.push_back((r >> i) & 1);
                for (int i = 0; i < n; ++i)
                    in.push_back((b >> i) & 1);
                const auto out = aqfp::evalCombinational(net, in);
                ASSERT_EQ(out[0], r < b)
                    << "n=" << n << " r=" << r << " b=" << b;
            }
        }
    }
}

TEST(ComparatorNetlist, RandomWidth10)
{
    const int n = 10;
    const aqfp::Netlist net = aqfp::legalize(buildComparatorNetlist(n));
    sc::Xoshiro256StarStar rng(4242);
    for (int t = 0; t < 500; ++t) {
        const int r = static_cast<int>(rng.nextBits(n));
        const int b = static_cast<int>(rng.nextBits(n));
        std::vector<bool> in;
        for (int i = 0; i < n; ++i)
            in.push_back((r >> i) & 1);
        for (int i = 0; i < n; ++i)
            in.push_back((b >> i) & 1);
        ASSERT_EQ(aqfp::evalCombinational(net, in)[0], r < b);
    }
}

TEST(SngBank, SharedMatrixCheaperThanPrivateRngs)
{
    const SngBankCost shared = analyzeSngBank(100, 10, true);
    const SngBankCost priv = analyzeSngBank(100, 10, false);
    EXPECT_LT(shared.rngJj, priv.rngJj);
    EXPECT_EQ(shared.comparatorJj, priv.comparatorJj);
    EXPECT_GT(shared.totalJj(), 0);
}

TEST(SngBank, CostScalesWithOutputs)
{
    const SngBankCost a = analyzeSngBank(100, 10);
    const SngBankCost b = analyzeSngBank(800, 10);
    EXPECT_GT(b.totalJj(), a.totalJj());
    // Comparators dominate and scale linearly.
    EXPECT_EQ(b.comparatorJj, 8 * a.comparatorJj);
}

} // namespace
} // namespace aqfpsc::blocks
