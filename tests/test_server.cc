/**
 * @file
 * InferenceServer: options validation, bitwise equivalence of served
 * results with the synchronous batch path, micro-batching and
 * backpressure behavior, lossless shutdown, and a concurrent
 * submit/shutdown fuzz (run under ASan/UBSan in CI) proving no future
 * is ever lost or satisfied twice.
 */

#include <atomic>
#include <future>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "core/server.h"
#include "core/session.h"
#include "data/digits.h"

namespace aqfpsc::core {
namespace {

std::vector<nn::Sample>
testImages(int n)
{
    return data::generateDigits(n, 77);
}

InferenceSession
makeSession(std::size_t stream_len = 128)
{
    EngineOptions opts;
    opts.streamLen = stream_len;
    return InferenceSession(buildTinyCnn(3), opts);
}

TEST(ServerOptions, ValidateTable)
{
    EXPECT_TRUE(ServerOptions{}.validate().empty());

    ServerOptions o;
    o.workers = -1;
    EXPECT_FALSE(o.validate().empty());
    o = {};
    o.queueCapacity = 0;
    EXPECT_FALSE(o.validate().empty());
    o = {};
    o.maxBatch = 0;
    EXPECT_FALSE(o.validate().empty());
    o = {};
    o.adaptive = true;
    o.policy.checkpointCycles = 63;
    EXPECT_FALSE(o.validate().empty());
    o.policy.checkpointCycles = 128;
    EXPECT_TRUE(o.validate().empty());

    const InferenceSession session = makeSession();
    ServerOptions bad;
    bad.queueCapacity = 0;
    EXPECT_THROW(InferenceServer(session, bad), std::invalid_argument);
    ServerOptions unknown;
    unknown.backend = "no-such-backend";
    EXPECT_THROW(InferenceServer(session, unknown),
                 std::invalid_argument);
    ServerOptions floatref;
    floatref.backend = "float-ref";
    floatref.adaptive = true;
    EXPECT_THROW(InferenceServer(session, floatref),
                 std::invalid_argument);
}

/**
 * Served predictions are the pure function (model, options, image,
 * requestId): submitting a batch through any worker/micro-batch
 * configuration returns exactly what the synchronous BatchRunner path
 * computes for the same images in the same order.
 */
TEST(InferenceServer, ResultsMatchSynchronousPathBitwise)
{
    const auto samples = testImages(10);
    const InferenceSession session = makeSession();
    const std::vector<ScPrediction> reference =
        session.predict(samples, {});

    for (const int workers : {1, 3}) {
        for (const int max_batch : {1, 4}) {
            ServerOptions opts;
            opts.workers = workers;
            opts.maxBatch = max_batch;
            InferenceServer server(session, opts);
            std::vector<std::future<ServedPrediction>> futures;
            for (const auto &s : samples)
                futures.push_back(server.submit(s.image));
            for (std::size_t i = 0; i < futures.size(); ++i) {
                ServedPrediction r = futures[i].get();
                SCOPED_TRACE("workers=" + std::to_string(workers) +
                             " maxBatch=" + std::to_string(max_batch) +
                             " i=" + std::to_string(i));
                EXPECT_EQ(r.requestId, i);
                EXPECT_EQ(r.prediction.label, reference[i].label);
                EXPECT_EQ(r.prediction.scores, reference[i].scores);
                EXPECT_EQ(r.consumedCycles, 128u);
                EXPECT_GE(r.serviceSeconds, 0.0);
            }
            const ServerStats stats = server.stats();
            EXPECT_EQ(stats.submitted, samples.size());
            EXPECT_EQ(stats.completed, samples.size());
            EXPECT_EQ(stats.failed, 0u);
            EXPECT_GE(stats.batches, 1u);
        }
    }
}

/** Adaptive serving returns exactly what inferAdaptive(i) computes. */
TEST(InferenceServer, AdaptiveResultsMatchEngineBitwise)
{
    const auto samples = testImages(6);
    const InferenceSession session = makeSession(512);
    ServerOptions opts;
    opts.workers = 2;
    opts.adaptive = true;
    opts.policy.checkpointCycles = 128;
    opts.policy.exitMargin = 0.1;
    InferenceServer server(session, opts);

    auto futures = server.submitBatch([&] {
        std::vector<nn::Tensor> images;
        for (const auto &s : samples)
            images.push_back(s.image);
        return images;
    }());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const ServedPrediction r = futures[i].get();
        const AdaptivePrediction ref = session.engine().inferAdaptive(
            samples[i].image, i, opts.policy);
        EXPECT_EQ(r.prediction.scores, ref.prediction.scores);
        EXPECT_EQ(r.consumedCycles, ref.consumedCycles);
        EXPECT_EQ(r.exitedEarly, ref.exitedEarly);
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, samples.size());
    EXPECT_GT(stats.avgConsumedCycles, 0.0);
}

/** A tiny queue forces backpressure; every request still completes. */
TEST(InferenceServer, BackpressureWithTinyQueue)
{
    const auto samples = testImages(12);
    const InferenceSession session = makeSession();
    ServerOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 2;
    InferenceServer server(session, opts);
    std::vector<std::future<ServedPrediction>> futures;
    for (const auto &s : samples)
        futures.push_back(server.submit(s.image)); // blocks when full
    for (auto &f : futures)
        EXPECT_EQ(f.get().prediction.scores.size(), 10u);
    EXPECT_EQ(server.stats().completed, samples.size());
}

/**
 * trySubmit is the non-throwing admission-control path: it rejects with
 * std::nullopt (never blocks, never throws) when the queue is at
 * capacity or the server is shut down, and every future it does hand
 * out is served losslessly.
 */
TEST(InferenceServer, TrySubmitRejectsInsteadOfBlocking)
{
    const auto samples = testImages(8);
    const InferenceSession session = makeSession(64);
    ServerOptions opts;
    opts.workers = 1;
    opts.queueCapacity = 2;
    auto server = std::make_unique<InferenceServer>(session, opts);

    // Overdrive an open loop: with a queue of 2 and one worker, some of
    // these must be rejected — and a reject must return immediately as
    // nullopt rather than block like submit().
    std::vector<std::future<ServedPrediction>> futures;
    std::size_t rejected = 0;
    for (int lap = 0; lap < 8; ++lap) {
        for (const auto &s : samples) {
            auto f = server->trySubmit(s.image);
            if (f)
                futures.push_back(std::move(*f));
            else
                ++rejected;
        }
    }
    for (auto &f : futures)
        EXPECT_EQ(f.get().prediction.scores.size(), 10u);
    const ServerStats stats = server->stats();
    EXPECT_EQ(stats.submitted, futures.size());
    EXPECT_EQ(stats.completed, futures.size());

    server->shutdown();
    EXPECT_FALSE(server->trySubmit(samples[0].image).has_value());
}

/**
 * ServerStats observability: the queue-depth high-water mark tracks the
 * deepest backlog ever reached (bounded by queueCapacity), and the
 * queue/service latency histograms account one entry per completed
 * request.
 */
TEST(InferenceServer, StatsHighWaterAndLatencyHistograms)
{
    const auto samples = testImages(6);
    const InferenceSession session = makeSession(64);
    ServerOptions opts;
    opts.workers = 1;
    opts.queueCapacity = 4;
    InferenceServer server(session, opts);
    std::vector<std::future<ServedPrediction>> futures;
    for (const auto &s : samples)
        futures.push_back(server.submit(s.image));
    for (auto &f : futures) {
        const ServedPrediction served = f.get();
        EXPECT_GE(served.queueSeconds, 0.0);
        EXPECT_GT(served.serviceSeconds, 0.0);
    }
    const ServerStats stats = server.stats();
    EXPECT_GE(stats.queueDepthHighWater, 1u);
    EXPECT_LE(stats.queueDepthHighWater, opts.queueCapacity);
    EXPECT_EQ(stats.queueHistogram.total(), samples.size());
    EXPECT_EQ(stats.serviceHistogram.total(), samples.size());
    // The summary renders something human-shaped, not empty.
    EXPECT_NE(stats.serviceHistogram.summary().find("p99"),
              std::string::npos);
}

TEST(InferenceServer, SubmitAfterShutdownThrows)
{
    const auto samples = testImages(1);
    const InferenceSession session = makeSession();
    InferenceServer server(session);
    auto f = server.submit(samples[0].image);
    server.shutdown();
    EXPECT_EQ(f.get().requestId, 0u); // accepted before shutdown: served
    EXPECT_FALSE(server.accepting());
    EXPECT_THROW(server.submit(samples[0].image), std::runtime_error);
    server.shutdown(); // idempotent
}

/**
 * The lossless-shutdown fuzz: several producers hammer submit() while
 * another thread shuts the server down mid-stream.  Every submit()
 * either throws (rejected, counted) or yields a future — and every such
 * future must become ready with a valid prediction.  Accounting must
 * balance exactly: accepted == completed, no request lost, none
 * duplicated.  Run under ASan/UBSan in CI.
 */
TEST(InferenceServer, ConcurrentSubmitShutdownFuzz)
{
    const auto samples = testImages(4);
    const InferenceSession session = makeSession(64);

    for (int round = 0; round < 3; ++round) {
        ServerOptions opts;
        opts.workers = 2;
        opts.queueCapacity = 4; // small: exercises the blocked-submit path
        opts.maxBatch = 3;
        auto server = std::make_unique<InferenceServer>(session, opts);

        constexpr int kProducers = 4;
        constexpr int kPerProducer = 12;
        std::atomic<int> accepted{0};
        std::atomic<int> rejected{0};
        std::atomic<int> served{0};
        std::vector<std::thread> producers;
        producers.reserve(kProducers);
        for (int p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                std::mt19937 rng(static_cast<unsigned>(p * 97 + round));
                for (int i = 0; i < kPerProducer; ++i) {
                    try {
                        auto f = server->submit(
                            samples[static_cast<std::size_t>(
                                        (p + i) % 4)]
                                .image);
                        accepted.fetch_add(1);
                        // Block on the result inline, so producers stuck
                        // in get() interleave with the racing shutdown.
                        const ServedPrediction r = f.get();
                        if (r.prediction.scores.size() == 10)
                            served.fetch_add(1);
                    } catch (const std::runtime_error &) {
                        rejected.fetch_add(1);
                    }
                    if (rng() % 8 == 0)
                        std::this_thread::yield();
                }
            });
        }
        std::thread stopper([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            server->shutdown();
        });
        for (auto &t : producers)
            t.join();
        stopper.join();

        EXPECT_EQ(accepted.load() + rejected.load(),
                  kProducers * kPerProducer);
        // Lossless: every accepted request was served with a value.
        EXPECT_EQ(served.load(), accepted.load());
        const ServerStats stats = server->stats();
        EXPECT_EQ(stats.submitted,
                  static_cast<std::uint64_t>(accepted.load()));
        EXPECT_EQ(stats.completed,
                  static_cast<std::uint64_t>(accepted.load()));
        EXPECT_EQ(stats.failed, 0u);
        server.reset(); // destructor path after explicit shutdown
    }
}

/**
 * Cohort-aware stats accounting: a worker serves a popped micro-batch
 * as one stage-major cohort, but every counter must stay per *image* —
 * completed counts requests (not cohort executions or queue pops),
 * avgConsumedCycles averages per-request cycles, and avgBatchSize is
 * images per pop.  Regression test for the accounting, pinned through
 * invariants that hold for every races-permitting pop schedule.
 */
TEST(InferenceServer, CohortAwareStatsAccounting)
{
    const auto samples = testImages(10);

    // Non-adaptive: every request consumes exactly the full stream, so
    // per-image accounting must read streamLen on the nose — a per-pop
    // (or per-cohort) accounting bug would skew it by the batch size.
    {
        const InferenceSession session = makeSession(128);
        ServerOptions opts;
        opts.workers = 1;
        opts.maxBatch = 4;
        InferenceServer server(session, opts);
        std::vector<std::future<ServedPrediction>> futures;
        for (const auto &s : samples)
            futures.push_back(server.submit(s.image));
        for (auto &f : futures)
            f.get();
        server.shutdown();

        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.submitted, samples.size());
        EXPECT_EQ(stats.completed, samples.size()); // images, not pops
        EXPECT_EQ(stats.failed, 0u);
        EXPECT_DOUBLE_EQ(stats.avgConsumedCycles, 128.0);
        ASSERT_GE(stats.batches, 1u);
        EXPECT_LE(stats.batches, stats.completed);
        EXPECT_DOUBLE_EQ(stats.avgBatchSize,
                         static_cast<double>(stats.completed) /
                             static_cast<double>(stats.batches));
        EXPECT_GE(stats.avgBatchSize, 1.0);
        EXPECT_LE(stats.avgBatchSize, 4.0);
    }

    // Adaptive: deterministic early exit makes per-image consumed
    // cycles an exact function of the request id, so the served average
    // must equal the engine-side mean bit-for-bit.
    {
        const InferenceSession session = makeSession(512);
        ServerOptions opts;
        opts.workers = 2;
        opts.maxBatch = 4;
        opts.adaptive = true;
        opts.policy.checkpointCycles = 128;
        opts.policy.exitMargin = 0.1;
        opts.policy.minCycles = 128;
        InferenceServer server(session, opts);
        std::vector<std::future<ServedPrediction>> futures;
        for (const auto &s : samples)
            futures.push_back(server.submit(s.image));
        for (auto &f : futures)
            f.get();
        server.shutdown();

        std::uint64_t expect_cycles = 0;
        std::uint64_t expect_exits = 0;
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const AdaptivePrediction ref = session.engine().inferAdaptive(
                samples[i].image, i, opts.policy);
            expect_cycles += ref.consumedCycles;
            expect_exits += ref.exitedEarly ? 1 : 0;
        }
        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.completed, samples.size());
        EXPECT_EQ(stats.earlyExits, expect_exits);
        EXPECT_DOUBLE_EQ(stats.avgConsumedCycles,
                         static_cast<double>(expect_cycles) /
                             static_cast<double>(samples.size()));
    }
}

/** Destruction without explicit shutdown drains pending requests. */
TEST(InferenceServer, DestructorDrains)
{
    const auto samples = testImages(6);
    const InferenceSession session = makeSession(64);
    std::vector<std::future<ServedPrediction>> futures;
    {
        ServerOptions opts;
        opts.workers = 1;
        InferenceServer server(session, opts);
        for (const auto &s : samples)
            futures.push_back(server.submit(s.image));
        // ~InferenceServer runs here.
    }
    for (auto &f : futures)
        EXPECT_EQ(f.get().prediction.scores.size(), 10u);
}

} // namespace
} // namespace aqfpsc::core
