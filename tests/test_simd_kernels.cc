/**
 * @file
 * Differential tests of the runtime-dispatched SIMD kernels
 * (src/sc/simd/) against the scalar reference path.
 *
 * The dispatch contract is bit-identity: the carry-save planes hold
 * exact binary counts (independent of addition grouping), so the AVX2/
 * AVX-512 ripple and threshold-pack kernels must reproduce the scalar
 * loops exactly on every input.  Coverage:
 *
 *  - randomized sweep of the three *Multi entry points across plane
 *    counts 1-10, cohort sizes {1,2,3,4,7,8}, odd/even stream counts
 *    and tail lengths (incl. len 100), against both the forced-scalar
 *    table and the per-image single-stream reference;
 *  - SNG threshold fill (fillBipolar) forced-scalar vs dispatched
 *    across values (incl. the all-ones special case), code widths and
 *    lengths, plus a direct kernel unit sweep over n in [1, 64];
 *  - dispatch-layer invariants (level ordering, env-override policy);
 *  - forced-scalar vs forced-vector end-to-end golden score hash on
 *    all stream backends (the session-level analogue of the PR 3/PR 5
 *    goldens, here exercised at both dispatch levels in one process).
 */

#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "core/session.h"
#include "data/digits.h"
#include "sc/apc.h"
#include "sc/rng.h"
#include "sc/simd/simd.h"
#include "sc/stream_matrix.h"

namespace aqfpsc {
namespace {

using sc::simd::Level;

/** RAII: pin the active kernel table, restore on scope exit. */
class LevelGuard
{
  public:
    explicit LevelGuard(Level level) : prev_(sc::simd::activeLevel())
    {
        EXPECT_TRUE(sc::simd::setActiveLevel(level));
    }
    ~LevelGuard() { sc::simd::setActiveLevel(prev_); }

  private:
    Level prev_;
};

/** One randomized cohort workload: m product streams (paired through
 *  addXnor2Multi, odd leftover through addXnorMulti) plus one shared
 *  addWordsMulti row — the exact call mix of stage_common.h. */
struct CohortWorkload
{
    std::size_t images;
    std::size_t len;
    std::size_t words;
    int maxCount;
    int m; ///< XNOR product streams (m + 1 total adds per counter)
    std::vector<std::vector<std::uint64_t>> weights; ///< m rows, shared
    std::vector<std::uint64_t> shared; ///< the addWordsMulti row
    /** inputs[c][s] = image c's input row for stream s. */
    std::vector<std::vector<std::vector<std::uint64_t>>> inputs;

    CohortWorkload(std::size_t images_, std::size_t len_, int max_count,
                   int m_, sc::Xoshiro256StarStar &rng)
        : images(images_), len(len_), words((len_ + 63) / 64),
          maxCount(max_count), m(m_)
    {
        const auto randomRow = [&] {
            std::vector<std::uint64_t> row(words);
            rng.nextWords(row.data(), words);
            return row;
        };
        for (int s = 0; s < m; ++s)
            weights.push_back(randomRow());
        shared = randomRow();
        inputs.resize(images);
        for (std::size_t c = 0; c < images; ++c)
            for (int s = 0; s < m; ++s)
                inputs[c].push_back(randomRow());
    }

    /** Run the stage_common call mix through the *Multi entry points. */
    void
    runMulti(std::vector<sc::ColumnCounts> &cc) const
    {
        ASSERT_EQ(cc.size(), images);
        sc::ColumnCounts *ptrs[sc::ColumnCounts::kMaxMultiImages];
        const std::uint64_t *px[sc::ColumnCounts::kMaxMultiImages];
        const std::uint64_t *x2[sc::ColumnCounts::kMaxMultiImages];
        for (std::size_t c = 0; c < images; ++c)
            ptrs[c] = &cc[c];
        int s = 0;
        for (; s + 1 < m; s += 2) {
            for (std::size_t c = 0; c < images; ++c) {
                px[c] = inputs[c][static_cast<std::size_t>(s)].data();
                x2[c] = inputs[c][static_cast<std::size_t>(s) + 1].data();
            }
            sc::ColumnCounts::addXnor2Multi(
                ptrs, px, x2, images,
                weights[static_cast<std::size_t>(s)].data(),
                weights[static_cast<std::size_t>(s) + 1].data(), words);
        }
        if (s < m) {
            for (std::size_t c = 0; c < images; ++c)
                px[c] = inputs[c][static_cast<std::size_t>(s)].data();
            sc::ColumnCounts::addXnorMulti(
                ptrs, px, images,
                weights[static_cast<std::size_t>(s)].data(), words);
        }
        sc::ColumnCounts::addWordsMulti(ptrs, images, shared.data(),
                                        words);
    }

    /** Per-image single-stream reference (never dispatched). */
    void
    runReference(std::vector<sc::ColumnCounts> &cc) const
    {
        ASSERT_EQ(cc.size(), images);
        for (std::size_t c = 0; c < images; ++c) {
            for (int s = 0; s < m; ++s)
                cc[c].addXnor(inputs[c][static_cast<std::size_t>(s)].data(),
                              weights[static_cast<std::size_t>(s)].data(),
                              words);
            cc[c].addWords(shared.data(), words);
        }
    }
};

std::vector<sc::ColumnCounts>
makeCounters(const CohortWorkload &wl)
{
    std::vector<sc::ColumnCounts> cc;
    cc.reserve(wl.images);
    for (std::size_t c = 0; c < wl.images; ++c)
        cc.emplace_back(wl.len, wl.maxCount);
    return cc;
}

TEST(SimdKernels, MultiEntryPointsMatchScalarAndReference)
{
    const Level vector_level = sc::simd::detectedLevel();
    sc::Xoshiro256StarStar rng(20260807);
    const std::size_t lens[] = {64, 100, 192, 513, 1024};
    const std::size_t cohorts[] = {1, 2, 3, 4, 7, 8};
    for (int planes = 1; planes <= 10; ++planes) {
        const int max_count = (1 << planes) - 1;
        for (std::size_t ci = 0; ci < std::size(cohorts); ++ci) {
            const std::size_t images = cohorts[ci];
            const std::size_t len =
                lens[(static_cast<std::size_t>(planes) + ci) %
                     std::size(lens)];
            // Odd/even product counts alternate with the cohort index;
            // m + 1 adds must stay within max_count.
            int m = max_count - 1 - static_cast<int>(ci % 2);
            if (m < 0)
                m = 0;
            SCOPED_TRACE("planes=" + std::to_string(planes) +
                         " images=" + std::to_string(images) +
                         " len=" + std::to_string(len) +
                         " m=" + std::to_string(m));
            const CohortWorkload wl(images, len, max_count, m, rng);

            auto scalar_cc = makeCounters(wl);
            {
                LevelGuard guard(Level::Scalar);
                wl.runMulti(scalar_cc);
            }
            auto vector_cc = makeCounters(wl);
            {
                LevelGuard guard(vector_level);
                wl.runMulti(vector_cc);
            }
            auto ref_cc = makeCounters(wl);
            wl.runReference(ref_cc);

            std::vector<int> scalar_counts, vector_counts, ref_counts;
            for (std::size_t c = 0; c < images; ++c) {
                SCOPED_TRACE("image=" + std::to_string(c));
                scalar_cc[c].extract(scalar_counts);
                vector_cc[c].extract(vector_counts);
                ref_cc[c].extract(ref_counts);
                EXPECT_EQ(scalar_counts, ref_counts);
                EXPECT_EQ(vector_counts, ref_counts);
            }
        }
    }
}

TEST(SimdKernels, ThresholdPackKernelSweepsAllLengths)
{
    sc::Xoshiro256StarStar rng(42);
    std::uint64_t rnd[64];
    rng.nextWords(rnd, 64);
    const std::uint64_t thresholds[] = {
        0ULL, 1ULL, 0x8000000000000000ULL, 0xFFFFFFFFFFFFFFFFULL,
        rng.nextWord()};
    const sc::simd::KernelTable &dispatched = sc::simd::kernels();
    const sc::simd::KernelTable &scalar = *sc::simd::scalarKernels();
    for (const std::uint64_t threshold : thresholds) {
        for (std::size_t n = 1; n <= 64; ++n) {
            EXPECT_EQ(dispatched.thresholdPack(rnd, n, threshold),
                      scalar.thresholdPack(rnd, n, threshold))
                << "n=" << n << " threshold=" << threshold;
        }
    }
}

TEST(SimdKernels, FillBipolarMatchesScalarAcrossValues)
{
    const Level vector_level = sc::simd::detectedLevel();
    const double values[] = {-1.0, -0.731, -0.5, 0.0,
                             0.25, 0.731,  1.0}; // 1.0 = all-ones path
    const int bit_widths[] = {1, 8, 10, 20}; // quantizer supports 1..20
    const std::size_t lens[] = {64, 100, 192, 1000, 1024};
    for (const std::size_t len : lens) {
        for (const int bits : bit_widths) {
            for (const double value : values) {
                SCOPED_TRACE("len=" + std::to_string(len) +
                             " bits=" + std::to_string(bits) +
                             " value=" + std::to_string(value));
                sc::StreamMatrix scalar_m(1, len), vector_m(1, len);
                {
                    LevelGuard guard(Level::Scalar);
                    sc::Xoshiro256StarStar rng(7777);
                    scalar_m.fillBipolar(0, value, bits, rng);
                }
                {
                    LevelGuard guard(vector_level);
                    sc::Xoshiro256StarStar rng(7777);
                    vector_m.fillBipolar(0, value, bits, rng);
                }
                for (std::size_t w = 0; w < scalar_m.wordsPerRow(); ++w)
                    EXPECT_EQ(scalar_m.row(0)[w], vector_m.row(0)[w])
                        << "word " << w;
            }
        }
    }
}

TEST(SimdKernels, DispatchInvariants)
{
    const Level detected = sc::simd::detectedLevel();
    const Level before = sc::simd::activeLevel();
    EXPECT_LE(static_cast<int>(before), static_cast<int>(detected));

    // Every tier up to the detected one is selectable; beyond it fails
    // without changing the active table.
    for (const Level level : {Level::Scalar, Level::Avx2, Level::Avx512}) {
        if (static_cast<int>(level) <= static_cast<int>(detected)) {
            EXPECT_TRUE(sc::simd::setActiveLevel(level));
            EXPECT_EQ(sc::simd::activeLevel(), level);
            EXPECT_STREQ(sc::simd::kernels().name,
                         sc::simd::levelName(level));
        } else {
            const Level held = sc::simd::activeLevel();
            EXPECT_FALSE(sc::simd::setActiveLevel(level));
            EXPECT_EQ(sc::simd::activeLevel(), held);
        }
    }
    EXPECT_TRUE(sc::simd::setActiveLevel(before));

    // AQFPSC_FORCE_SCALAR policy: unset/empty/"0" keep the detected
    // tier, anything else forces scalar.
    EXPECT_EQ(sc::simd::resolveLevel(detected, nullptr), detected);
    EXPECT_EQ(sc::simd::resolveLevel(detected, ""), detected);
    EXPECT_EQ(sc::simd::resolveLevel(detected, "0"), detected);
    EXPECT_EQ(sc::simd::resolveLevel(detected, "1"), Level::Scalar);
    EXPECT_EQ(sc::simd::resolveLevel(detected, "yes"), Level::Scalar);
    EXPECT_EQ(sc::simd::resolveLevel(detected, "00"), Level::Scalar);
}

/** FNV-1a over the hexfloat rendering of every score (the test_cohort
 *  golden-hash pattern): any bit drift anywhere changes the hash. */
std::uint64_t
scoreHash(const std::vector<core::ScPrediction> &preds)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    char buf[64];
    for (const core::ScPrediction &p : preds) {
        for (const double v : p.scores) {
            std::snprintf(buf, sizeof(buf), "%a;", v);
            for (const char *c = buf; *c; ++c) {
                h ^= static_cast<unsigned char>(*c);
                h *= 0x100000001B3ULL;
            }
        }
    }
    return h;
}

TEST(SimdKernels, ForcedScalarAndVectorEndToEndHashesMatch)
{
    const Level vector_level = sc::simd::detectedLevel();
    if (vector_level == Level::Scalar)
        GTEST_SKIP() << "no vector ISA available on this host/build";

    const auto samples = data::generateDigits(8, 77);
    struct Case
    {
        const char *backend;
        std::size_t len;
        bool approx;
    };
    // len 576 = 9 words: both full lane groups and a scalar tail word;
    // len 100 pins the sub-lane-group (pure tail) path end to end.
    const Case cases[] = {
        {"aqfp-sorter", 576, false},
        {"aqfp-sorter", 100, false},
        {"cmos-apc", 576, false},
        {"cmos-apc", 576, true}, // OR-pair overcount path
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(std::string(c.backend) + " len=" +
                     std::to_string(c.len) + " approx=" +
                     std::to_string(c.approx));
        core::EngineOptions opts;
        opts.backend = c.backend;
        opts.streamLen = c.len;
        opts.approximateApc = c.approx;
        core::EvalOptions eval;
        eval.cohort = 4;

        std::uint64_t scalar_hash, vector_hash;
        {
            // Sessions are built inside the guard so stream generation
            // (weights at compile, inputs at predict) uses the pinned
            // kernel table too.
            LevelGuard guard(Level::Scalar);
            const core::InferenceSession session(core::buildTinyCnn(3),
                                                 opts);
            scalar_hash = scoreHash(session.predict(samples, eval));
        }
        {
            LevelGuard guard(vector_level);
            const core::InferenceSession session(core::buildTinyCnn(3),
                                                 opts);
            vector_hash = scoreHash(session.predict(samples, eval));
        }
        EXPECT_EQ(scalar_hash, vector_hash);
    }
}

} // namespace
} // namespace aqfpsc
