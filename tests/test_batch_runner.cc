/**
 * @file
 * Tests for batched multi-threaded SC inference: predictions must be a
 * pure function of (network, config, image index) — bit-identical at
 * 1, 2 and 8 worker threads for both backends — and the evaluation
 * stats must be consistent with single-image inference.
 */

#include <gtest/gtest.h>

#include "core/batch_runner.h"
#include "core/model_zoo.h"
#include "core/sc_engine.h"
#include "data/digits.h"

namespace aqfpsc::core {
namespace {

void
expectSamePredictions(const std::vector<ScPrediction> &a,
                      const std::vector<ScPrediction> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label, b[i].label) << "image " << i;
        ASSERT_EQ(a[i].scores.size(), b[i].scores.size()) << "image " << i;
        for (std::size_t j = 0; j < a[i].scores.size(); ++j) {
            EXPECT_DOUBLE_EQ(a[i].scores[j], b[i].scores[j])
                << "image " << i << " score " << j;
        }
    }
}

ScEngineConfig
makeConfig(const std::string &backend)
{
    ScEngineConfig cfg;
    cfg.streamLen = 256;
    cfg.seed = 99;
    cfg.backendName = backend;
    return cfg;
}

TEST(BatchRunner, PredictionsIdenticalAt1And2And8Threads)
{
    // buildTinyCnn ends in a plain Dense output, so the same network is
    // mappable on both backends.
    const nn::Network net = buildTinyCnn(21);
    const auto samples = data::generateDigits(12, 5);

    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        const ScNetworkEngine engine(net, makeConfig(backend));
        const auto p1 = BatchRunner(engine, 1).run(samples);
        const auto p2 = BatchRunner(engine, 2).run(samples);
        const auto p8 = BatchRunner(engine, 8).run(samples);
        expectSamePredictions(p1, p2);
        expectSamePredictions(p1, p8);
    }
}

TEST(BatchRunner, BatchMatchesInferIndexed)
{
    const nn::Network net = buildTinyCnn(22);
    const auto samples = data::generateDigits(6, 17);
    const ScNetworkEngine engine(net, makeConfig("aqfp-sorter"));

    const auto batch = BatchRunner(engine, 8).run(samples);
    ASSERT_EQ(batch.size(), samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const ScPrediction solo = engine.inferIndexed(samples[i].image, i);
        EXPECT_EQ(batch[i].label, solo.label);
        ASSERT_EQ(batch[i].scores.size(), solo.scores.size());
        for (std::size_t j = 0; j < solo.scores.size(); ++j)
            EXPECT_DOUBLE_EQ(batch[i].scores[j], solo.scores[j]);
    }
}

TEST(BatchRunner, IndexZeroMatchesPlainInfer)
{
    const nn::Network net = buildTinyCnn(23);
    const auto samples = data::generateDigits(1, 29);
    const ScNetworkEngine engine(net, makeConfig("aqfp-sorter"));

    const ScPrediction a = engine.infer(samples[0].image);
    const ScPrediction b = engine.inferIndexed(samples[0].image, 0);
    ASSERT_EQ(a.scores.size(), b.scores.size());
    for (std::size_t j = 0; j < a.scores.size(); ++j)
        EXPECT_DOUBLE_EQ(a.scores[j], b.scores[j]);
}

TEST(BatchRunner, LimitAndEmptyBatch)
{
    const nn::Network net = buildTinyCnn(24);
    const auto samples = data::generateDigits(5, 31);
    const ScNetworkEngine engine(net, makeConfig("aqfp-sorter"));
    const BatchRunner runner(engine, 2);

    EXPECT_EQ(runner.run(samples, 3).size(), 3u);
    EXPECT_EQ(runner.run(samples, 0).size(), 0u);
    EXPECT_EQ(runner.run({}).size(), 0u);
    const ScEvalStats empty = runner.evaluate(samples, 0);
    EXPECT_EQ(empty.images, 0u);
    EXPECT_DOUBLE_EQ(empty.accuracy, 0.0);
}

TEST(BatchRunner, EvaluateReportsConsistentStats)
{
    const nn::Network net = buildTinyCnn(25);
    const auto samples = data::generateDigits(10, 37);
    const ScNetworkEngine engine(net, makeConfig("aqfp-sorter"));

    const ScEvalStats s1 = BatchRunner(engine, 1).evaluate(samples);
    const ScEvalStats s8 = BatchRunner(engine, 8).evaluate(samples);
    EXPECT_EQ(s1.images, samples.size());
    EXPECT_EQ(s8.images, samples.size());
    // Deterministic derivation: accuracy never depends on thread count.
    EXPECT_DOUBLE_EQ(s1.accuracy, s8.accuracy);
    EXPECT_GT(s1.wallSeconds, 0.0);
    EXPECT_GT(s1.imagesPerSec, 0.0);
    EXPECT_GE(s1.accuracy, 0.0);
    EXPECT_LE(s1.accuracy, 1.0);
}

TEST(BatchRunner, EngineEvaluateRoutesThroughBatchRunner)
{
    const nn::Network net = buildTinyCnn(26);
    const auto samples = data::generateDigits(8, 41);

    ScEngineConfig cfg = makeConfig("aqfp-sorter");
    cfg.threads = 4;
    const ScNetworkEngine engine(net, cfg);
    const double acc = engine.evaluate(samples, EvalOptions{}).accuracy;
    const ScEvalStats batch = engine.evaluate(samples, {.threads = 1});
    EXPECT_DOUBLE_EQ(acc, batch.accuracy);
}

TEST(BatchRunner, ThreadCountResolution)
{
    const nn::Network net = buildTinyCnn(27);
    const ScNetworkEngine engine(net, makeConfig("aqfp-sorter"));
    EXPECT_EQ(BatchRunner(engine, 3).threads(), 3);
    EXPECT_GE(BatchRunner(engine, 0).threads(), 1); // hardware default
    EXPECT_EQ(BatchRunner(engine, -5).threads(),
              BatchRunner(engine, 0).threads());
    EXPECT_EQ(BatchRunner(engine, 100000).threads(), 256); // clamped
}

} // namespace
} // namespace aqfpsc::core
