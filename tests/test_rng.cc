/**
 * @file
 * Unit tests for the random sources (rng.h) and the RNG matrix.
 */

#include <bit>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sc/rng.h"
#include "sc/rng_matrix.h"

namespace aqfpsc::sc {
namespace {

TEST(Xoshiro, Deterministic)
{
    Xoshiro256StarStar a(42), b(42), c(43);
    EXPECT_EQ(a.nextWord(), b.nextWord());
    EXPECT_NE(a.nextWord(), c.nextWord());
}

TEST(Xoshiro, JumpDecorrelates)
{
    Xoshiro256StarStar a(42), b(42);
    b.jump();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextWord() == b.nextWord() ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(Xoshiro, BitMeanIsHalf)
{
    Xoshiro256StarStar rng(7);
    int ones = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ones += rng.nextBit() ? 1 : 0;
    // 5-sigma band around n/2.
    EXPECT_NEAR(ones, n / 2, 5 * std::sqrt(n / 4.0));
}

TEST(Xoshiro, DoubleInUnitInterval)
{
    Xoshiro256StarStar rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RandomSource, NextBitsRange)
{
    Xoshiro256StarStar rng(3);
    for (int bits : {1, 5, 10, 20, 63}) {
        for (int i = 0; i < 100; ++i) {
            EXPECT_LT(rng.nextBits(bits), 1ULL << bits);
        }
    }
}

TEST(Lfsr, MaximalPeriodWidth4)
{
    Lfsr lfsr(4, 1);
    std::set<std::uint32_t> states;
    for (int i = 0; i < 15; ++i)
        states.insert(lfsr.nextState());
    // A maximal 4-bit LFSR visits all 15 non-zero states.
    EXPECT_EQ(states.size(), 15u);
}

TEST(Lfsr, MaximalPeriodWidth8)
{
    Lfsr lfsr(8, 0xAB);
    std::set<std::uint32_t> states;
    for (int i = 0; i < 255; ++i)
        states.insert(lfsr.nextState());
    EXPECT_EQ(states.size(), 255u);
}

TEST(Lfsr, ZeroSeedCoerced)
{
    Lfsr lfsr(5, 0);
    EXPECT_NE(lfsr.nextState(), 0u);
}

TEST(Lfsr, StatesStayInRange)
{
    for (int width : {3, 7, 10, 16}) {
        Lfsr lfsr(width, 123);
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(lfsr.nextState(), 1u << width);
    }
}

TEST(AqfpTrueRng, UnbiasedAtZeroInput)
{
    AqfpTrueRng rng(5);
    EXPECT_DOUBLE_EQ(rng.probabilityOfOne(), 0.5);
    int ones = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ones += rng.nextBit() ? 1 : 0;
    EXPECT_NEAR(ones, n / 2, 5 * std::sqrt(n / 4.0));
}

TEST(AqfpTrueRng, BiasFollowsNormalCdf)
{
    // P(1) = Phi(i_in / i_noise): spot-check a few standard values.
    AqfpTrueRng rng(1, 0.0, 1.0);
    rng.setInputCurrent(1.0);
    EXPECT_NEAR(rng.probabilityOfOne(), 0.8413, 1e-3);
    rng.setInputCurrent(-1.0);
    EXPECT_NEAR(rng.probabilityOfOne(), 0.1587, 1e-3);
    rng.setInputCurrent(3.0);
    EXPECT_NEAR(rng.probabilityOfOne(), 0.99865, 1e-4);
}

TEST(AqfpTrueRng, EmpiricalBiasMatchesModel)
{
    AqfpTrueRng rng(77, 0.5, 1.0);
    const int n = 50000;
    int ones = 0;
    for (int i = 0; i < n; ++i)
        ones += rng.nextBit() ? 1 : 0;
    const double p = rng.probabilityOfOne();
    EXPECT_NEAR(static_cast<double>(ones) / n, p,
                5 * std::sqrt(p * (1 - p) / n));
}

TEST(AqfpTrueRng, WordPathMatchesFairCoin)
{
    AqfpTrueRng rng(9);
    int ones = 0;
    for (int i = 0; i < 1000; ++i)
        ones += std::popcount(rng.nextWord());
    EXPECT_NEAR(ones, 32000, 5 * std::sqrt(64000 / 4.0));
}

// ---------------------------------------------------------------- matrix

TEST(RngMatrix, Dimensions)
{
    RngMatrix m(11, 1);
    EXPECT_EQ(m.n(), 11);
    EXPECT_EQ(m.numOutputs(), 44);
    EXPECT_EQ(m.jjCount(), 2 * 11 * 11);
}

TEST(RngMatrix, OutputsWithinRange)
{
    RngMatrix m(7, 2);
    for (int i = 0; i < m.numOutputs(); ++i)
        EXPECT_LT(m.output(i), 1ULL << 7);
}

TEST(RngMatrix, UnitsOfMatchesOutputBits)
{
    RngMatrix m(9, 3);
    for (int idx = 0; idx < m.numOutputs(); ++idx) {
        const auto units = m.unitsOf(idx);
        ASSERT_EQ(units.size(), 9u);
        const std::uint64_t out = m.output(idx);
        for (int b = 0; b < 9; ++b) {
            const int r = units[static_cast<std::size_t>(b)] / 9;
            const int c = units[static_cast<std::size_t>(b)] % 9;
            EXPECT_EQ((out >> b) & 1ULL, m.bit(r, c) ? 1ULL : 0ULL);
        }
    }
}

TEST(RngMatrix, OddDimensionSharesAtMostOneUnit)
{
    // The paper's claim (Sec. 4.1): every two output numbers share at
    // most a single unit RNG.  Holds exactly for odd N.
    RngMatrix m(11, 4);
    for (int i = 0; i < m.numOutputs(); ++i) {
        const auto ui = m.unitsOf(i);
        const std::set<int> si(ui.begin(), ui.end());
        for (int j = i + 1; j < m.numOutputs(); ++j) {
            const auto uj = m.unitsOf(j);
            int shared = 0;
            for (int u : uj)
                shared += si.count(u) ? 1 : 0;
            EXPECT_LE(shared, 1) << "outputs " << i << ", " << j;
        }
    }
}

TEST(RngMatrix, EachUnitSharedByExactlyFourOutputs)
{
    RngMatrix m(9, 5);
    std::vector<int> uses(81, 0);
    for (int i = 0; i < m.numOutputs(); ++i) {
        for (int u : m.unitsOf(i))
            ++uses[static_cast<std::size_t>(u)];
    }
    for (int u = 0; u < 81; ++u)
        EXPECT_EQ(uses[static_cast<std::size_t>(u)], 4);
}

TEST(RngMatrix, StepAdvances)
{
    RngMatrix m(11, 6);
    std::vector<std::uint64_t> before;
    for (int i = 0; i < m.numOutputs(); ++i)
        before.push_back(m.output(i));
    m.step();
    int changed = 0;
    for (int i = 0; i < m.numOutputs(); ++i)
        changed += m.output(i) != before[static_cast<std::size_t>(i)] ? 1 : 0;
    EXPECT_GT(changed, m.numOutputs() / 2);
}

TEST(RngMatrix, OutputPairCorrelationIsSmall)
{
    // Numbers sharing one bit out of 11 should be nearly independent:
    // check the bitwise agreement rate of a row and a column output.
    RngMatrix m(11, 8);
    int agree = 0;
    const int cycles = 8000;
    for (int t = 0; t < cycles; ++t) {
        const std::uint64_t a = m.output(0);      // row 0
        const std::uint64_t b = m.output(11 + 5); // column 5
        agree += std::popcount(~(a ^ b) & ((1ULL << 11) - 1));
        m.step();
    }
    const double rate =
        static_cast<double>(agree) / (11.0 * cycles);
    // The single shared unit sits at different bit positions of the two
    // numbers, so position-wise agreement is that of fair coins: 0.5.
    EXPECT_NEAR(rate, 0.5, 0.02);
}

} // namespace
} // namespace aqfpsc::sc
