/**
 * @file
 * Unit tests for the paper's SC-DNN blocks: feedback-unit equivalences,
 * value properties, literal-vs-counter equivalence and statistical
 * accuracy bands (Algorithm 1, Algorithm 2, the majority chain).
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/avg_pooling.h"
#include "blocks/categorization.h"
#include "blocks/feature_extraction.h"
#include "blocks/feedback_unit.h"
#include "sc/sng.h"

namespace aqfpsc::blocks {
namespace {

/**
 * Brute-force reference for one feature-extraction step: literally sort
 * the [column | feedback] vector descending, read bit M-1, and take the
 * output-selected feedback slice (offset-accumulator semantics; see
 * feedback_unit.h).
 */
bool
referenceFeatureStep(int m, int column_ones, int &carry)
{
    std::vector<int> v;
    for (int i = 0; i < column_ones; ++i)
        v.push_back(1);
    for (int i = column_ones; i < m; ++i)
        v.push_back(0);
    for (int i = 0; i < carry; ++i)
        v.push_back(1);
    for (int i = carry; i < m; ++i)
        v.push_back(0);
    std::sort(v.rbegin(), v.rend());
    const bool out = v[static_cast<std::size_t>(m - 1)] != 0;
    const int lo = out ? (m + 1) / 2 : (m - 1) / 2;
    int ones = 0;
    for (int i = lo; i < lo + m; ++i)
        ones += v[static_cast<std::size_t>(i)];
    carry = ones;
    return out;
}

/** Brute-force reference for one step of Algorithm 2. */
bool
referencePoolingStep(int m, int column_ones, int &carry)
{
    std::vector<int> v;
    for (int i = 0; i < column_ones; ++i)
        v.push_back(1);
    for (int i = column_ones; i < m; ++i)
        v.push_back(0);
    for (int i = 0; i < carry; ++i)
        v.push_back(1);
    for (int i = carry; i < m; ++i)
        v.push_back(0);
    std::sort(v.rbegin(), v.rend());
    const bool out = v[static_cast<std::size_t>(m - 1)] != 0; // Ds[M]
    int ones = 0;
    if (out) {
        for (int i = m; i < 2 * m; ++i)
            ones += v[static_cast<std::size_t>(i)];
    } else {
        for (int i = 0; i < m; ++i)
            ones += v[static_cast<std::size_t>(i)];
    }
    carry = ones;
    return out;
}

class FeedbackUnitTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FeedbackUnitTest, FeatureCounterMatchesSortedVector)
{
    const int m = GetParam();
    if (m % 2 == 0)
        GTEST_SKIP() << "feature unit requires odd m";
    FeatureFeedbackUnit unit(m);
    int ref_carry = (m - 1) / 2; // operating-point initialization
    sc::Xoshiro256StarStar rng(m);
    for (int t = 0; t < 2000; ++t) {
        const int col = static_cast<int>(rng.nextWord() %
                                         static_cast<std::uint64_t>(m + 1));
        const bool expect = referenceFeatureStep(m, col, ref_carry);
        ASSERT_EQ(unit.step(col), expect) << "t=" << t;
        ASSERT_EQ(unit.carry(), ref_carry) << "t=" << t;
    }
}

TEST_P(FeedbackUnitTest, PoolingCounterMatchesSortedVector)
{
    const int m = GetParam();
    PoolingFeedbackUnit unit(m);
    int ref_carry = 0;
    sc::Xoshiro256StarStar rng(m * 3 + 1);
    for (int t = 0; t < 2000; ++t) {
        const int col = static_cast<int>(rng.nextWord() %
                                         static_cast<std::uint64_t>(m + 1));
        const bool expect = referencePoolingStep(m, col, ref_carry);
        ASSERT_EQ(unit.step(col), expect) << "t=" << t;
        ASSERT_EQ(unit.carry(), ref_carry) << "t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FeedbackUnitTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 9, 16, 25));

TEST(FeedbackUnit, Reset)
{
    FeatureFeedbackUnit f(5);
    EXPECT_EQ(f.carry(), 2); // operating point (M-1)/2
    f.step(5);
    f.step(5);
    EXPECT_NE(f.carry(), 2);
    f.reset();
    EXPECT_EQ(f.carry(), 2);
}

// --------------------------------------------------- feature extraction

/**
 * Exact expected output rate of the feature-extraction block when all m
 * product streams are iid Bernoulli(q): the feedback carry c is a Markov
 * chain on {0..m} with col ~ Binomial(m, q) and the offset-accumulator
 * dynamics of feedback_unit.h: out = [c + col >= m],
 * c' = clamp(c + col - (m-1)/2 - out, 0, m), started at the operating
 * point (m-1)/2.  Computed by power iteration.
 *
 * The block's response is a smooth version of clip(sum, -1, 1) -- the
 * bounded carry rounds the clip corners (the measured curve fits
 * tanh(0.8 z); see nn::SorterTanh).  This function is the exact spec the
 * implementation must meet.
 */
double
markovExpectedValue(int m, double q)
{
    if (q <= 0.0)
        return -1.0; // no ones ever enter the sorter
    if (q >= 1.0)
        return 1.0; // every column saturates the threshold
    // Binomial pmf.
    std::vector<double> pmf(static_cast<std::size_t>(m) + 1);
    for (int k = 0; k <= m; ++k) {
        double logp = 0.0;
        for (int i = 0; i < k; ++i)
            logp += std::log((m - i) / static_cast<double>(i + 1)) +
                    std::log(q);
        logp += (m - k) * std::log(1.0 - q);
        pmf[static_cast<std::size_t>(k)] = std::exp(logp);
    }
    std::vector<double> pi(static_cast<std::size_t>(m) + 1, 0.0);
    pi[static_cast<std::size_t>((m - 1) / 2)] = 1.0; // operating point
    for (int iter = 0; iter < 3000; ++iter) {
        std::vector<double> next(pi.size(), 0.0);
        for (int c = 0; c <= m; ++c) {
            if (pi[static_cast<std::size_t>(c)] == 0.0)
                continue;
            for (int col = 0; col <= m; ++col) {
                const int s = c + col;
                const bool out = s >= m;
                const int cp =
                    std::clamp(s - (m - 1) / 2 - (out ? 1 : 0), 0, m);
                next[static_cast<std::size_t>(cp)] +=
                    pi[static_cast<std::size_t>(c)] *
                    pmf[static_cast<std::size_t>(col)];
            }
        }
        pi.swap(next);
    }
    double p_out = 0.0;
    for (int c = 0; c <= m; ++c) {
        // P(col >= m - c)
        double tail = 0.0;
        for (int col = std::max(0, m - c); col <= m; ++col)
            tail += pmf[static_cast<std::size_t>(col)];
        p_out += pi[static_cast<std::size_t>(c)] * tail;
    }
    return 2.0 * p_out - 1.0;
}

class FeatureBlockTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FeatureBlockTest, LiteralEqualsCounterForm)
{
    const int m = GetParam();
    const FeatureExtractionBlock block(m);
    sc::Xoshiro256StarStar rng(m * 17);
    std::vector<sc::Bitstream> products;
    for (int j = 0; j < m; ++j) {
        products.push_back(sc::encodeBipolar(2.0 * rng.nextDouble() - 1.0,
                                             8, 256, rng));
    }
    EXPECT_EQ(block.run(products), block.runLiteral(products));
    EXPECT_EQ(block.run(products),
              block.runLiteral(products,
                               sorting::SortKind::ThreeSorterCells));
}

TEST_P(FeatureBlockTest, OutputValueMatchesMarkovSpec)
{
    const int m = GetParam();
    if (m % 2 == 0) {
        // Even m mixes in the deterministic neutral stream, which the
        // iid-Bernoulli Markov spec does not model.
        GTEST_SKIP() << "Markov spec covers odd m";
    }
    const FeatureExtractionBlock block(m);
    sc::Xoshiro256StarStar rng(m * 29 + 5);
    const std::size_t len = 16384;
    for (double target : {-1.5, -0.6, 0.0, 0.4, 1.7}) {
        std::vector<sc::Bitstream> products;
        const double per = std::clamp(target / m, -1.0, 1.0);
        const double quantized =
            sc::codeToBipolar(sc::quantizeBipolar(per, 10), 10);
        for (int j = 0; j < m; ++j)
            products.push_back(sc::encodeBipolar(per, 10, len, rng));
        const double expect =
            markovExpectedValue(m, (quantized + 1.0) / 2.0);
        const double got = block.run(products).bipolarValue();
        EXPECT_NEAR(got, expect, 0.05) << "m=" << m << " target=" << target;
    }
}

TEST_P(FeatureBlockTest, LargeSumsSaturate)
{
    // Deep saturation: all products at +1 give +1 exactly; all at -1
    // give -1 exactly (no ones ever enter the sorter).
    const int m = GetParam();
    const FeatureExtractionBlock block(m);
    const std::size_t len = 512;
    std::vector<sc::Bitstream> hi(static_cast<std::size_t>(m),
                                  sc::Bitstream(len, true));
    std::vector<sc::Bitstream> lo(static_cast<std::size_t>(m),
                                  sc::Bitstream(len, false));
    EXPECT_DOUBLE_EQ(block.run(hi).bipolarValue(), 1.0);
    EXPECT_DOUBLE_EQ(block.run(lo).bipolarValue(), -1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FeatureBlockTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 9, 16, 25));

TEST(FeatureBlock, EvenInputsPadded)
{
    const FeatureExtractionBlock block(4);
    EXPECT_EQ(block.m(), 4);
    EXPECT_EQ(block.effectiveM(), 5);
    const FeatureExtractionBlock odd(9);
    EXPECT_EQ(odd.effectiveM(), 9);
}

TEST(FeatureBlock, InnerProductMatchesManualXnor)
{
    const int m = 5;
    const FeatureExtractionBlock block(m);
    sc::Xoshiro256StarStar rng(77);
    std::vector<sc::Bitstream> x, w, products;
    for (int j = 0; j < m; ++j) {
        x.push_back(sc::encodeBipolar(0.3, 8, 128, rng));
        w.push_back(sc::encodeBipolar(-0.2, 8, 128, rng));
        products.push_back(x.back().xnorWith(w.back()));
    }
    EXPECT_EQ(block.runInnerProduct(x, w), block.run(products));
}

TEST(FeatureBlock, ActivationShapeIsShiftedClippedRelu)
{
    // Fig. 13: sweeping the true sum z, the mean output value is
    // monotone, tracks z in the linear region, saturates at +1 and
    // approaches -1 (with the soft negative knee inherent to the
    // surplus-only feedback) -- and matches the Markov spec throughout.
    const int m = 9;
    const FeatureExtractionBlock block(m);
    sc::Xoshiro256StarStar rng(99);
    const std::size_t len = 16384;
    double prev = -2.0;
    for (double z = -2.0; z <= 2.01; z += 0.5) {
        std::vector<sc::Bitstream> products;
        const double per = z / m;
        const double q =
            (sc::codeToBipolar(sc::quantizeBipolar(per, 10), 10) + 1.0) /
            2.0;
        for (int j = 0; j < m; ++j)
            products.push_back(sc::encodeBipolar(per, 10, len, rng));
        const double v = block.run(products).bipolarValue();
        EXPECT_GE(v, prev - 0.05); // monotone within noise
        EXPECT_NEAR(v, markovExpectedValue(m, q), 0.05) << "z=" << z;
        prev = v;
    }
    // Positive rail reached.
    std::vector<sc::Bitstream> hi(static_cast<std::size_t>(m),
                                  sc::Bitstream(len, true));
    EXPECT_DOUBLE_EQ(block.run(hi).bipolarValue(), 1.0);
}

// --------------------------------------------------------- avg pooling

class PoolingBlockTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PoolingBlockTest, LiteralEqualsCounterForm)
{
    const int m = GetParam();
    const AvgPoolingBlock block(m);
    sc::Xoshiro256StarStar rng(m * 13);
    std::vector<sc::Bitstream> ins;
    for (int j = 0; j < m; ++j) {
        ins.push_back(sc::encodeBipolar(2.0 * rng.nextDouble() - 1.0, 8,
                                        256, rng));
    }
    EXPECT_EQ(block.run(ins), block.runLiteral(ins));
}

TEST_P(PoolingBlockTest, ExactOnesConservation)
{
    // Algorithm 2 emits exactly floor-or-carry of total/M: the output
    // ones count can differ from total/M by at most 1.
    const int m = GetParam();
    const AvgPoolingBlock block(m);
    sc::Xoshiro256StarStar rng(m * 31);
    std::vector<sc::Bitstream> ins;
    std::size_t total = 0;
    for (int j = 0; j < m; ++j) {
        ins.push_back(sc::encodeBipolar(2.0 * rng.nextDouble() - 1.0, 10,
                                        1024, rng));
        total += ins.back().countOnes();
    }
    const double out_ones =
        static_cast<double>(block.run(ins).countOnes());
    EXPECT_NEAR(out_ones, static_cast<double>(total) / m, 1.0)
        << "m=" << m;
}

TEST_P(PoolingBlockTest, ValueIsMean)
{
    const int m = GetParam();
    const AvgPoolingBlock block(m);
    sc::Xoshiro256StarStar rng(m * 41);
    std::vector<sc::Bitstream> ins;
    double sum = 0.0;
    for (int j = 0; j < m; ++j) {
        const double v = 2.0 * rng.nextDouble() - 1.0;
        sum += sc::codeToBipolar(sc::quantizeBipolar(v, 10), 10);
        ins.push_back(sc::encodeBipolar(v, 10, 8192, rng));
    }
    EXPECT_NEAR(block.run(ins).bipolarValue(), sum / m, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolingBlockTest,
                         ::testing::Values(1, 2, 4, 5, 9, 16, 25, 36));

// ------------------------------------------------------- categorization

TEST(CategorizationBlock, ChainLength)
{
    EXPECT_EQ(CategorizationBlock(1).chainLength(), 0);
    EXPECT_EQ(CategorizationBlock(3).chainLength(), 1);
    EXPECT_EQ(CategorizationBlock(5).chainLength(), 2);
    EXPECT_EQ(CategorizationBlock(101).chainLength(), 50);
    // Even K pads with one neutral stream first.
    EXPECT_EQ(CategorizationBlock(4).chainLength(), 2);
    EXPECT_EQ(CategorizationBlock(100).chainLength(), 50);
}

TEST(CategorizationBlock, SingleInputPassthrough)
{
    CategorizationBlock block(1);
    sc::Xoshiro256StarStar rng(5);
    const sc::Bitstream s = sc::encodeBipolar(0.3, 8, 128, rng);
    EXPECT_EQ(block.run({s}), s);
}

TEST(CategorizationBlock, MatchesExplicitFold)
{
    const int k = 7;
    CategorizationBlock block(k);
    sc::Xoshiro256StarStar rng(6);
    std::vector<sc::Bitstream> products;
    for (int j = 0; j < k; ++j)
        products.push_back(sc::encodeBipolar(2.0 * rng.nextDouble() - 1.0,
                                             8, 512, rng));
    const sc::Bitstream got = block.run(products);
    // Per-cycle explicit fold.
    for (std::size_t i = 0; i < 512; ++i) {
        auto maj = [](bool a, bool b, bool c) {
            return (a && b) || (a && c) || (b && c);
        };
        bool acc = maj(products[0].get(i), products[1].get(i),
                       products[2].get(i));
        acc = maj(acc, products[3].get(i), products[4].get(i));
        acc = maj(acc, products[5].get(i), products[6].get(i));
        ASSERT_EQ(got.get(i), acc) << "cycle " << i;
    }
}

TEST(CategorizationBlock, MonotoneInInputs)
{
    // Flipping any product bit 0 -> 1 can only raise the output: majority
    // chains are monotone, the property that preserves ranking.
    const int k = 9;
    CategorizationBlock block(k);
    sc::Xoshiro256StarStar rng(7);
    std::vector<sc::Bitstream> products;
    for (int j = 0; j < k; ++j)
        products.push_back(sc::encodeBipolar(0.0, 8, 64, rng));
    const std::size_t before = block.run(products).countOnes();
    // Raise one stream entirely to 1.
    products[4] = sc::Bitstream(64, true);
    const std::size_t after = block.run(products).countOnes();
    EXPECT_GE(after, before);
}

TEST(CategorizationBlock, PreservesRankingOfSeparatedScores)
{
    // Two output neurons sharing inputs, one with clearly larger inner
    // product: the majority-chain values must rank identically.
    const int k = 51;
    CategorizationBlock block(k);
    sc::Xoshiro256StarStar rng(8);
    const std::size_t len = 2048;
    std::vector<sc::Bitstream> x;
    std::vector<double> xv;
    for (int j = 0; j < k; ++j) {
        xv.push_back(2.0 * rng.nextDouble() - 1.0);
        x.push_back(sc::encodeBipolar(xv.back(), 10, len, rng));
    }
    // Weight set A correlates with x (large positive score), B is random.
    std::vector<sc::Bitstream> wa, wb;
    for (int j = 0; j < k; ++j) {
        wa.push_back(sc::encodeBipolar(std::clamp(xv[static_cast<std::size_t>(j)],
                                                  -1.0, 1.0),
                                       10, len, rng));
        wb.push_back(sc::encodeBipolar(2.0 * rng.nextDouble() - 1.0, 10,
                                       len, rng));
    }
    const double va = block.runInnerProduct(x, wa).bipolarValue();
    const double vb = block.runInnerProduct(x, wb).bipolarValue();
    EXPECT_GT(va, vb);
}

} // namespace
} // namespace aqfpsc::blocks
