/**
 * @file
 * Unit tests for sc::Bitstream.
 */

#include <gtest/gtest.h>

#include "sc/bitstream.h"
#include "sc/rng.h"

namespace aqfpsc::sc {
namespace {

TEST(Bitstream, DefaultIsEmpty)
{
    Bitstream s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.wordCount(), 0u);
}

TEST(Bitstream, ConstructZeroFilled)
{
    Bitstream s(100);
    EXPECT_EQ(s.size(), 100u);
    EXPECT_EQ(s.countOnes(), 0u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(s.get(i));
}

TEST(Bitstream, ConstructOneFilledKeepsTailClean)
{
    Bitstream s(70, true);
    EXPECT_EQ(s.countOnes(), 70u);
    EXPECT_EQ(s.wordCount(), 2u);
    // Bits 70..127 of the storage must be zero.
    EXPECT_EQ(s.word(1) >> 6, 0u);
}

TEST(Bitstream, SetGetRoundTrip)
{
    Bitstream s(130);
    s.set(0, true);
    s.set(64, true);
    s.set(129, true);
    EXPECT_TRUE(s.get(0));
    EXPECT_TRUE(s.get(64));
    EXPECT_TRUE(s.get(129));
    EXPECT_FALSE(s.get(1));
    EXPECT_EQ(s.countOnes(), 3u);
    s.set(64, false);
    EXPECT_FALSE(s.get(64));
    EXPECT_EQ(s.countOnes(), 2u);
}

TEST(Bitstream, FromBitsAndToString)
{
    Bitstream s = Bitstream::fromBits({true, false, true, true});
    EXPECT_EQ(s.toString(), "1011");
    EXPECT_EQ(s.countOnes(), 3u);
}

TEST(Bitstream, FromStringRoundTrip)
{
    const std::string pattern = "0100110100";
    Bitstream s = Bitstream::fromString(pattern);
    EXPECT_EQ(s.toString(), pattern);
    // The paper's example: 0100110100 represents 4/10 = 0.4 unipolar.
    EXPECT_DOUBLE_EQ(s.unipolarValue(), 0.4);
}

TEST(Bitstream, FromStringRejectsGarbage)
{
    EXPECT_THROW(Bitstream::fromString("01x1"), std::invalid_argument);
}

TEST(Bitstream, BipolarValueMatchesPaperExample)
{
    // -0.5 as 10010000: P(1) = 2/8 (Sec. 2.2 of the paper).
    Bitstream s = Bitstream::fromString("10010000");
    EXPECT_DOUBLE_EQ(s.bipolarValue(), -0.5);
}

TEST(Bitstream, AndOrXorNotXnor)
{
    Bitstream a = Bitstream::fromString("1100");
    Bitstream b = Bitstream::fromString("1010");
    EXPECT_EQ((a & b).toString(), "1000");
    EXPECT_EQ((a | b).toString(), "1110");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ((~a).toString(), "0011");
    EXPECT_EQ(a.xnorWith(b).toString(), "1001");
}

TEST(Bitstream, NotKeepsTailClean)
{
    Bitstream a(65);
    Bitstream n = ~a;
    EXPECT_EQ(n.countOnes(), 65u);
    EXPECT_EQ(n.word(1), 1u);
}

TEST(Bitstream, XnorKeepsTailClean)
{
    Bitstream a(65);
    Bitstream b(65);
    Bitstream x = a.xnorWith(b);
    EXPECT_EQ(x.countOnes(), 65u);
    EXPECT_EQ(x.word(1) >> 1, 0u);
}

TEST(Bitstream, Equality)
{
    Bitstream a = Bitstream::fromString("101");
    Bitstream b = Bitstream::fromString("101");
    Bitstream c = Bitstream::fromString("100");
    Bitstream d = Bitstream::fromString("1010");
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
    EXPECT_FALSE(a == d);
}

TEST(Bitstream, SetWordMasksTail)
{
    Bitstream s(4);
    s.setWord(0, ~0ULL);
    EXPECT_EQ(s.countOnes(), 4u);
}

TEST(Bitstream, NeutralHasValueZero)
{
    for (std::size_t len : {2u, 64u, 100u, 1024u}) {
        Bitstream n = Bitstream::neutral(len);
        EXPECT_DOUBLE_EQ(n.bipolarValue(), 0.0) << "len=" << len;
    }
}

TEST(Bitstream, NeutralPhases)
{
    Bitstream a = Bitstream::neutral(8, false);
    Bitstream b = Bitstream::neutral(8, true);
    EXPECT_EQ(a.toString(), "01010101");
    EXPECT_EQ(b.toString(), "10101010");
}

TEST(Bitstream, NotOfBipolarNegatesValue)
{
    Xoshiro256StarStar rng(9);
    Bitstream s(256);
    for (std::size_t i = 0; i < 256; ++i)
        s.set(i, rng.nextBit());
    EXPECT_DOUBLE_EQ((~s).bipolarValue(), -s.bipolarValue());
}

class BitstreamLengthTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BitstreamLengthTest, CountOnesMatchesNaive)
{
    const std::size_t len = GetParam();
    Xoshiro256StarStar rng(1234 + len);
    Bitstream s(len);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < len; ++i) {
        const bool v = rng.nextBit();
        s.set(i, v);
        expected += v ? 1 : 0;
    }
    EXPECT_EQ(s.countOnes(), expected);
}

TEST_P(BitstreamLengthTest, XnorValueProductProperty)
{
    // XNOR of independent bipolar streams multiplies their values
    // (within Monte-Carlo tolerance).
    const std::size_t len = GetParam();
    if (len < 512)
        GTEST_SKIP() << "too short for a statistical check";
    Xoshiro256StarStar rng(99);
    Bitstream a(len), b(len);
    for (std::size_t i = 0; i < len; ++i) {
        a.set(i, rng.nextDouble() < 0.7);
        b.set(i, rng.nextDouble() < 0.35);
    }
    const double got = a.xnorWith(b).bipolarValue();
    const double expect = a.bipolarValue() * b.bipolarValue();
    EXPECT_NEAR(got, expect, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Lengths, BitstreamLengthTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000,
                                           1024, 2048));

} // namespace
} // namespace aqfpsc::sc
