/**
 * @file
 * Cross-module integration tests: engine determinism, analytic
 * consistency of the hardware report, export on real block netlists,
 * and the per-layer instance arithmetic of the whole-network mapping.
 */

#include <memory>

#include <gtest/gtest.h>

#include "aqfp/export.h"
#include "aqfp/passes.h"
#include "blocks/feature_extraction.h"
#include "core/hardware_report.h"
#include "core/model_zoo.h"
#include "core/sc_engine.h"
#include "data/digits.h"

namespace aqfpsc::core {
namespace {

TEST(EngineDeterminism, SameSeedSameScores)
{
    nn::Network net = buildTinyCnn(9);
    const auto samples = data::generateDigits(5, 77);

    ScEngineConfig cfg;
    cfg.streamLen = 256;
    cfg.seed = 4242;
    ScNetworkEngine a(net, cfg);
    ScNetworkEngine b(net, cfg);
    for (const auto &s : samples) {
        const ScPrediction pa = a.infer(s.image);
        const ScPrediction pb = b.infer(s.image);
        EXPECT_EQ(pa.label, pb.label);
        ASSERT_EQ(pa.scores.size(), pb.scores.size());
        for (std::size_t i = 0; i < pa.scores.size(); ++i)
            EXPECT_DOUBLE_EQ(pa.scores[i], pb.scores[i]);
    }
}

TEST(EngineDeterminism, DifferentSeedDifferentStreams)
{
    nn::Network net = buildTinyCnn(9);
    const auto samples = data::generateDigits(3, 78);
    ScEngineConfig a_cfg, b_cfg;
    a_cfg.streamLen = b_cfg.streamLen = 256;
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    ScNetworkEngine a(net, a_cfg);
    ScNetworkEngine b(net, b_cfg);
    int diffs = 0;
    for (const auto &s : samples) {
        const auto pa = a.infer(s.image);
        const auto pb = b.infer(s.image);
        for (std::size_t i = 0; i < pa.scores.size(); ++i)
            diffs += pa.scores[i] != pb.scores[i] ? 1 : 0;
    }
    EXPECT_GT(diffs, 0); // streams differ even if labels usually agree
}

TEST(HardwareReport, SnnInstanceArithmetic)
{
    // Instance counts follow directly from Table 8 geometry.
    const nn::Network snn = buildSnn(1);
    const NetworkHardware hw = analyzeNetworkHardware(snn, 1024, {}, {},
                                                      /*fast=*/true);
    ASSERT_EQ(hw.layers.size(), 7u);
    EXPECT_EQ(hw.layers[0].instances, 32LL * 28 * 28); // conv1 blocks
    EXPECT_EQ(hw.layers[0].blockInputs, 1 * 3 * 3 + 1);
    EXPECT_EQ(hw.layers[1].instances, 32LL * 14 * 14); // pool1
    EXPECT_EQ(hw.layers[2].instances, 32LL * 28 * 28 / 4); // conv2 at 14x14
    EXPECT_EQ(hw.layers[2].blockInputs, 32 * 3 * 3 + 1);
    EXPECT_EQ(hw.layers[4].instances, 500);  // FC500
    EXPECT_EQ(hw.layers[4].blockInputs, 7 * 7 * 32 + 1);
    EXPECT_EQ(hw.layers[5].instances, 800);  // FC800
    EXPECT_EQ(hw.layers[6].instances, 10);   // categorization
    EXPECT_EQ(hw.layers[6].blockInputs, 801);
    // Weight streams = all parameters.
    EXPECT_EQ(hw.weightStreams,
              32LL * 9 + 32 + 32 * 32 * 9 + 32 + 1568 * 500 + 500 +
                  500 * 800 + 800 + 800 * 10 + 10);
}

TEST(HardwareReport, FastEstimateTracksExactOnMidSizeBlock)
{
    // The fast estimator (used for the DNN's 3000-input FC sorters) is
    // calibrated on an exactly legalized block; check it against the
    // exact analysis at a size where both are feasible.
    const aqfp::Netlist exact_net = aqfp::legalize(
        blocks::FeatureExtractionBlock::buildNetlist(801), false);
    const auto exact = aqfp::analyzeNetlist(exact_net);

    // Reach the estimator through a Dense(800)+act+out network analyzed
    // in fast mode.
    nn::Network net;
    net.add(std::make_unique<nn::Dense>(800, 4, 1));
    net.add(std::make_unique<nn::SorterTanh>());
    net.add(std::make_unique<nn::MajorityChainDense>(4, 10, 2));
    const NetworkHardware hw =
        analyzeNetworkHardware(net, 1024, {}, {}, /*fast=*/true);
    const auto &fc = hw.layers[0];
    ASSERT_EQ(fc.blockInputs, 801);
    const double ratio = static_cast<double>(fc.aqfpPerBlock.jj) /
                         static_cast<double>(exact.jj);
    EXPECT_GT(ratio, 0.6);
    EXPECT_LT(ratio, 1.6);
}

TEST(Export, LegalizedFeatureBlockVerilogIsConsistent)
{
    const aqfp::Netlist net =
        aqfp::legalize(blocks::FeatureExtractionBlock::buildNetlist(5));
    const std::string v = aqfp::toVerilog(net, "featext5");
    // Every primary port appears.
    for (std::size_t i = 0; i < net.inputs().size(); ++i) {
        EXPECT_NE(v.find("input pi" + std::to_string(i)),
                  std::string::npos);
    }
    for (std::size_t i = 0; i < net.outputs().size(); ++i) {
        EXPECT_NE(v.find("assign po" + std::to_string(i)),
                  std::string::npos);
    }
    // Splitters from legalization are instantiated.
    EXPECT_NE(v.find("AQFP_SPL"), std::string::npos);
}

TEST(Digits, TrainableToHighAccuracyQuickly)
{
    // The dataset substitution is only valid if the task is learnable:
    // a linear-output CNN must exceed 90% within a small budget.
    nn::Network net;
    net.add(std::make_unique<nn::Conv2D>(1, 6, 3, 4));
    net.add(std::make_unique<nn::SorterTanh>());
    net.add(std::make_unique<nn::AvgPool2>());
    net.add(std::make_unique<nn::AvgPool2>());
    net.add(std::make_unique<nn::Dense>(7 * 7 * 6, 10, 5));
    auto train = data::generateDigits(1000, 31);
    const auto test = data::generateDigits(150, 32);
    nn::TrainConfig cfg;
    cfg.epochs = 5;
    cfg.learningRate = 0.1f;
    net.train(train, cfg);
    EXPECT_GT(net.evaluate(test), 0.9);
}

} // namespace
} // namespace aqfpsc::core
