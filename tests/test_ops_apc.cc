/**
 * @file
 * Unit tests for SC operators (ops.h) and parallel counters (apc.h).
 */

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sc/apc.h"
#include "sc/ops.h"
#include "sc/sng.h"

namespace aqfpsc::sc {
namespace {

TEST(Ops, UnipolarMultiply)
{
    Xoshiro256StarStar rng(1);
    const std::size_t len = 8192;
    const Bitstream a = encodeUnipolar(0.6, 10, len, rng);
    const Bitstream b = encodeUnipolar(0.5, 10, len, rng);
    EXPECT_NEAR(multiplyUnipolar(a, b).unipolarValue(), 0.3, 0.03);
}

class BipolarMultiplyTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(BipolarMultiplyTest, ValueProduct)
{
    const auto [x, y] = GetParam();
    Xoshiro256StarStar rng(2);
    const std::size_t len = 16384;
    const Bitstream a = encodeBipolar(x, 10, len, rng);
    const Bitstream b = encodeBipolar(y, 10, len, rng);
    EXPECT_NEAR(multiplyBipolar(a, b).bipolarValue(), x * y, 0.04);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, BipolarMultiplyTest,
    ::testing::Values(std::make_pair(0.5, 0.5), std::make_pair(-0.5, 0.5),
                      std::make_pair(-0.8, -0.6), std::make_pair(0.0, 0.9),
                      std::make_pair(1.0, -1.0), std::make_pair(0.3, 0.3)));

TEST(Ops, ScaledAddIsMean)
{
    Xoshiro256StarStar rng(3);
    const std::size_t len = 16384;
    std::vector<Bitstream> ins;
    const std::vector<double> vals = {0.8, -0.4, 0.2, -0.6};
    for (double v : vals)
        ins.push_back(encodeBipolar(v, 10, len, rng));
    const double mean = (0.8 - 0.4 + 0.2 - 0.6) / 4.0;
    EXPECT_NEAR(scaledAdd(ins, rng).bipolarValue(), mean, 0.05);
}

TEST(Ops, Majority3Truth)
{
    const Bitstream a = Bitstream::fromString("00001111");
    const Bitstream b = Bitstream::fromString("00110011");
    const Bitstream c = Bitstream::fromString("01010101");
    EXPECT_EQ(majority3(a, b, c).toString(), "00010111");
}

TEST(Ops, CorrelationIdenticalStreams)
{
    Xoshiro256StarStar rng(4);
    const Bitstream a = encodeUnipolar(0.5, 10, 4096, rng);
    EXPECT_NEAR(streamCorrelation(a, a), 1.0, 1e-9);
}

TEST(Ops, CorrelationComplementStreams)
{
    Xoshiro256StarStar rng(5);
    const Bitstream a = encodeUnipolar(0.5, 10, 4096, rng);
    EXPECT_NEAR(streamCorrelation(a, ~a), -1.0, 1e-9);
}

TEST(Ops, CorrelationIndependentNearZero)
{
    Xoshiro256StarStar rng(6);
    const Bitstream a = encodeUnipolar(0.5, 10, 16384, rng);
    const Bitstream b = encodeUnipolar(0.5, 10, 16384, rng);
    EXPECT_NEAR(streamCorrelation(a, b), 0.0, 0.05);
}

TEST(Ops, CorrelationConstantStreamIsZero)
{
    const Bitstream a(128, true);
    const Bitstream b = Bitstream::neutral(128);
    EXPECT_DOUBLE_EQ(streamCorrelation(a, b), 0.0);
}

// ------------------------------------------------------------- counters

TEST(Apc, ExactCount)
{
    EXPECT_EQ(exactColumnCount({true, false, true, true}), 3);
    EXPECT_EQ(exactColumnCount({}), 0);
    EXPECT_EQ(exactColumnCount({false, false}), 0);
}

TEST(Apc, ApproximateOvercountsOnPairsOfOnes)
{
    // a + b ~ 2(a AND b) + (a OR b): exact unless both are 1.
    ApproximateParallelCounter apc(4);
    EXPECT_EQ(apc.count({false, false, false, false}), 0);
    EXPECT_EQ(apc.count({true, false, false, true}), 2);
    EXPECT_EQ(apc.count({true, true, false, false}), 3);  // (1,1) pair -> +1
    EXPECT_EQ(apc.count({true, true, true, true}), 6);    // two pairs -> +2
}

TEST(Apc, OddInputPassthrough)
{
    ApproximateParallelCounter apc(3);
    EXPECT_EQ(apc.count({false, false, true}), 1);
    EXPECT_EQ(apc.count({true, true, true}), 4);
}

TEST(Apc, ApproximationProperty)
{
    // approx = exact + number of (1,1) pairs, for all 6-bit patterns.
    ApproximateParallelCounter apc(6);
    for (int pattern = 0; pattern < 64; ++pattern) {
        std::vector<bool> bits(6);
        int pairs11 = 0;
        for (int i = 0; i < 6; ++i)
            bits[static_cast<std::size_t>(i)] = (pattern >> i) & 1;
        for (int i = 0; i + 1 < 6; i += 2)
            pairs11 += (bits[static_cast<std::size_t>(i)] &&
                        bits[static_cast<std::size_t>(i) + 1])
                           ? 1 : 0;
        EXPECT_EQ(apc.count(bits), exactColumnCount(bits) + pairs11);
    }
}

TEST(Apc, GateCountGrowsWithWidth)
{
    int prev = 0;
    for (int m : {8, 16, 32, 64, 128}) {
        const int g = ApproximateParallelCounter(m).gateCount();
        EXPECT_GT(g, prev);
        prev = g;
    }
}

class ColumnCountsTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ColumnCountsTest, MatchesNaiveCounting)
{
    const std::size_t len = GetParam();
    const int m = 37;
    Xoshiro256StarStar rng(100 + len);
    std::vector<Bitstream> streams;
    for (int j = 0; j < m; ++j)
        streams.push_back(encodeUnipolar(rng.nextDouble(), 10, len, rng));

    ColumnCounts counts(len, m);
    for (const auto &s : streams)
        counts.add(s);
    EXPECT_EQ(counts.added(), m);

    std::vector<int> extracted;
    counts.extract(extracted);
    ASSERT_EQ(extracted.size(), len);
    for (std::size_t i = 0; i < len; ++i) {
        int naive = 0;
        for (const auto &s : streams)
            naive += s.get(i) ? 1 : 0;
        ASSERT_EQ(extracted[i], naive) << "cycle " << i;
        ASSERT_EQ(counts.count(i), naive) << "cycle " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ColumnCountsTest,
                         ::testing::Values(1, 64, 65, 100, 256, 1024));

TEST(ColumnCounts, ClearResets)
{
    ColumnCounts counts(64, 4);
    counts.add(Bitstream(64, true));
    counts.clear();
    EXPECT_EQ(counts.added(), 0);
    EXPECT_EQ(counts.count(0), 0);
    counts.add(Bitstream(64, true));
    EXPECT_EQ(counts.count(63), 1);
}

TEST(ColumnCounts, AddWordsMatchesAdd)
{
    const std::size_t len = 200;
    Xoshiro256StarStar rng(55);
    Bitstream s = encodeUnipolar(0.5, 10, len, rng);
    ColumnCounts a(len, 2), b(len, 2);
    a.add(s);
    std::vector<std::uint64_t> words(s.wordCount());
    for (std::size_t w = 0; w < s.wordCount(); ++w)
        words[w] = s.word(w);
    b.addWords(words.data(), words.size());
    for (std::size_t i = 0; i < len; ++i)
        EXPECT_EQ(a.count(i), b.count(i));
}

TEST(ColumnCounts, MaxCapacity)
{
    // Exactly max_count streams of all ones must be representable.
    const int m = 7;
    ColumnCounts counts(64, m);
    for (int j = 0; j < m; ++j)
        counts.add(Bitstream(64, true));
    EXPECT_EQ(counts.count(10), m);
}

/**
 * The lazy clear() boundary: clear() re-zeros only the planes the
 * streams added since the last clear can have dirtied (tracked through
 * bit_width of the stream count).  Reusing one counter with alternating
 * long -> short span lengths AND high -> low stream counts is exactly
 * the cohort/checkpoint hot-loop pattern: a stale plane (or a stale
 * word beyond a short span) surviving a clear would corrupt the next
 * use's counts.  Verified against naive counting at every cycle across
 * several alternations.
 */
TEST(ColumnCounts, LazyClearHighWaterAcrossAlternatingReuses)
{
    const std::size_t len = 200; // 4 words, non-multiple-of-64 tail
    const std::size_t words = (len + 63) / 64;
    Xoshiro256StarStar rng(321);
    ColumnCounts counts(len, 32);

    // (stream count, words covered by the add): high plane counts with
    // full-length adds alternate with low plane counts over short spans.
    const std::pair<int, std::size_t> rounds[] = {
        {20, words}, {3, 1}, {25, words}, {1, 1}, {31, words}, {2, 2},
    };
    for (const auto &[m, span_words] : rounds) {
        SCOPED_TRACE("m=" + std::to_string(m) +
                     " span_words=" + std::to_string(span_words));
        std::vector<std::vector<std::uint64_t>> streams;
        for (int j = 0; j < m; ++j) {
            std::vector<std::uint64_t> s(words, 0);
            for (std::size_t w = 0; w < span_words; ++w)
                s[w] = rng.nextWord();
            if (span_words == words && len % 64 != 0)
                s[words - 1] &= (1ULL << (len % 64)) - 1;
            streams.push_back(std::move(s));
            counts.addWords(streams.back().data(), span_words);
        }
        EXPECT_EQ(counts.added(), m);
        // Every cycle — including those beyond the short span, which
        // must read 0 even though earlier rounds dirtied their words —
        // matches naive counting of this round alone.
        for (std::size_t i = 0; i < len; ++i) {
            int naive = 0;
            for (const auto &s : streams)
                naive += static_cast<int>((s[i / 64] >> (i % 64)) & 1ULL);
            if (i / 64 >= span_words)
                naive = 0;
            ASSERT_EQ(counts.count(i), naive) << "cycle " << i;
        }
        counts.clear();
        EXPECT_EQ(counts.added(), 0);
    }
    // After the final clear the counter is pristine at every plane.
    for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(counts.count(i), 0);
}

/**
 * The cohort (multi-scratch) kernel entry points perform the same
 * per-image plane updates as their single-image forms: one shared
 * weight row against each image's own input rows, bit-identical
 * counters afterwards.
 */
TEST(ColumnCounts, CohortEntryPointsMatchSingleImageForms)
{
    const std::size_t len = 130; // ragged tail
    const std::size_t words = (len + 63) / 64;
    const std::size_t images = 5;
    Xoshiro256StarStar rng(99);

    auto randomRow = [&] {
        std::vector<std::uint64_t> r(words);
        for (auto &w : r)
            w = rng.nextWord();
        return r;
    };
    const std::vector<std::uint64_t> w1 = randomRow();
    const std::vector<std::uint64_t> w2 = randomRow();
    const std::vector<std::uint64_t> shared = randomRow();
    std::vector<std::vector<std::uint64_t>> x1s, x2s;
    for (std::size_t c = 0; c < images; ++c) {
        x1s.push_back(randomRow());
        x2s.push_back(randomRow());
    }

    std::vector<ColumnCounts> multi(images, ColumnCounts(len, 8));
    std::vector<ColumnCounts> single(images, ColumnCounts(len, 8));
    ColumnCounts *mp[8];
    const std::uint64_t *xs1[8];
    const std::uint64_t *xs2[8];
    for (std::size_t c = 0; c < images; ++c) {
        mp[c] = &multi[c];
        xs1[c] = x1s[c].data();
        xs2[c] = x2s[c].data();
    }

    ColumnCounts::addXnor2Multi(mp, xs1, xs2, images, w1.data(), w2.data(),
                                words);
    ColumnCounts::addXnorMulti(mp, xs1, images, w1.data(), words);
    ColumnCounts::addWordsMulti(mp, images, shared.data(), words);

    for (std::size_t c = 0; c < images; ++c) {
        single[c].addXnor2(x1s[c].data(), w1.data(), x2s[c].data(),
                           w2.data(), words);
        single[c].addXnor(x1s[c].data(), w1.data(), words);
        single[c].addWords(shared.data(), words);
    }

    for (std::size_t c = 0; c < images; ++c) {
        EXPECT_EQ(multi[c].added(), single[c].added());
        for (std::size_t i = 0; i < len; ++i)
            ASSERT_EQ(multi[c].count(i), single[c].count(i))
                << "image " << c << " cycle " << i;
    }
}

} // namespace
} // namespace aqfpsc::sc
