/**
 * @file
 * Differential and concurrency tests of core::PlanCache — the contract
 * that interning compiled plans and per-stage weight state is
 * observationally invisible: a cache-hit engine is bit-identical to a
 * cold-compiled one on every stream backend, deterministic and
 * adaptive, at every cohort size.  Plus: hit/miss/eviction accounting,
 * cross-model StageShared sharing (pointer equality), a
 * ServingFrontend regression pinning one compile per unique
 * (model, backend) pair, and a multi-threaded compile/destroy stress
 * run for the sanitizer jobs.
 *
 * Every cache-behaviour test skips itself when the cache is disabled
 * (AQFPSC_DISABLE_PLAN_CACHE=1), so the CI smoke comparison of both
 * modes sees identical outcomes from the rest of the suite.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "core/plan_cache.h"
#include "core/session.h"
#include "core/stages/stage.h"
#include "core/stages/stage_compiler.h"
#include "data/digits.h"
#include "nn/layers.h"
#include "serving/frontend.h"

namespace aqfpsc::core {
namespace {

std::vector<nn::Sample>
testImages(int count = 6)
{
    return data::generateDigits(count, 33);
}

EngineOptions
makeOptions(const std::string &backend, std::size_t stream_len,
            bool approx = false)
{
    EngineOptions opts;
    opts.backend = backend;
    opts.streamLen = stream_len;
    opts.approximateApc = approx;
    return opts;
}

/** FNV-1a over the hexfloat rendering of every score (the test_cohort
 *  idiom): any bit drift in any class of any image changes the hash. */
std::uint64_t
scoreHash(const std::vector<ScPrediction> &preds)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    char buf[64];
    for (const ScPrediction &p : preds) {
        for (const double v : p.scores) {
            std::snprintf(buf, sizeof(buf), "%a;", v);
            for (const char *c = buf; *c; ++c) {
                h ^= static_cast<unsigned char>(*c);
                h *= 0x100000001B3ULL;
            }
        }
    }
    return h;
}

/** RAII guard: start the test from a cold cache and restore whatever
 *  enabled-mode the process default (env-derived) was, so tests that
 *  toggle setEnabled cannot leak into later tests and the
 *  AQFPSC_DISABLE_PLAN_CACHE=1 CI run keeps its semantics. */
class CacheGuard
{
  public:
    CacheGuard() : restore_(PlanCache::instance().enabled())
    {
        PlanCache::instance().clear();
    }
    ~CacheGuard()
    {
        PlanCache::instance().setEnabled(restore_);
        PlanCache::instance().clear();
    }

  private:
    bool restore_;
};

/** Number of weighted (stream-carrying) stages of an engine's plan. */
std::size_t
sharedStageCount(const ScNetworkEngine &engine)
{
    std::size_t n = 0;
    for (std::size_t s = 0; s < engine.plan().stageCount(); ++s) {
        if (engine.plan().stage(s).sharedState() != nullptr)
            ++n;
    }
    return n;
}

/**
 * Cold-compiled vs cache-hit engines are bitwise identical on every
 * stream backend, deterministic + adaptive, cohort 1/4/8.  "Cold" is
 * compiled with interning switched off — nothing consulted, nothing
 * stored — and "warm" engines are compiled twice with the cache on, so
 * the second is a pure plan-level hit.
 */
TEST(PlanCacheDifferential, CachedEqualsColdOnAllStreamBackends)
{
    if (!PlanCache::instance().enabled())
        GTEST_SKIP() << "plan cache disabled via environment";
    const auto samples = testImages();
    struct Case
    {
        const char *model;
        const char *backend;
        std::size_t len;
        bool approx;
    };
    const Case cases[] = {
        {"tiny", "aqfp-sorter", 192, false},
        {"tiny", "cmos-apc", 192, false},
        {"tiny", "cmos-apc", 192, true}, // OR-pair overcount path
        {"snn", "aqfp-sorter", 64, false},
        {"snn", "cmos-apc", 64, false},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(std::string(c.model) + "/" + c.backend +
                     " len=" + std::to_string(c.len) +
                     " approx=" + std::to_string(c.approx));
        CacheGuard guard;
        const EngineOptions opts = makeOptions(c.backend, c.len, c.approx);

        // Cold reference: interning off, nothing shared.
        PlanCache::instance().setEnabled(false);
        const InferenceSession cold(buildModel(c.model, 3), opts);
        std::vector<std::uint64_t> goldens;
        for (const int cohort : {1, 4, 8}) {
            EvalOptions eval;
            eval.cohort = cohort;
            goldens.push_back(scoreHash(cold.predict(samples, eval)));
        }
        // All cohort sizes agree (the PR3/PR4 contract) — one golden.
        EXPECT_EQ(goldens[0], goldens[1]);
        EXPECT_EQ(goldens[0], goldens[2]);
        std::vector<AdaptivePrediction> cold_adaptive;
        for (const auto &s : samples)
            cold_adaptive.push_back(cold.inferAdaptive(s.image));

        PlanCache::instance().setEnabled(true);
        const InferenceSession warm1(buildModel(c.model, 3), opts);
        (void)warm1.engine();
        const InferenceSession warm2(buildModel(c.model, 3), opts);
        EXPECT_EQ(&warm1.engine().plan(), &warm2.engine().plan())
            << "identical specs must intern to one plan";

        for (const InferenceSession *warm : {&warm1, &warm2}) {
            for (const int cohort : {1, 4, 8}) {
                SCOPED_TRACE("cohort=" + std::to_string(cohort));
                EvalOptions eval;
                eval.cohort = cohort;
                EXPECT_EQ(scoreHash(warm->predict(samples, eval)),
                          goldens[0]);
            }
            for (std::size_t i = 0; i < samples.size(); ++i) {
                const AdaptivePrediction p =
                    warm->inferAdaptive(samples[i].image);
                EXPECT_EQ(p.prediction.scores,
                          cold_adaptive[i].prediction.scores)
                    << i;
                EXPECT_EQ(p.consumedCycles, cold_adaptive[i].consumedCycles)
                    << i;
                EXPECT_EQ(p.exitedEarly, cold_adaptive[i].exitedEarly) << i;
            }
        }
    }
}

/** The direct compiler contract: compileNetwork (cached) and
 *  compileNetworkUncached produce plans with pointer-shared stage state
 *  and the uncached path never consults the plan map. */
TEST(PlanCacheDifferential, UncachedCompileBypassesPlanMap)
{
    if (!PlanCache::instance().enabled())
        GTEST_SKIP() << "plan cache disabled via environment";
    CacheGuard guard;
    const nn::Network net = buildTinyCnn(3);
    const ScEngineConfig cfg = makeOptions("aqfp-sorter", 128).toConfig();

    const auto plan = stages::compileNetwork(net, cfg);
    const PlanCacheStats after_first = PlanCache::instance().stats();
    EXPECT_EQ(after_first.planMisses, 1u);
    EXPECT_EQ(after_first.planHits, 0u);

    const stages::ExecutionPlan direct =
        stages::compileNetworkUncached(net, cfg);
    const PlanCacheStats after_direct = PlanCache::instance().stats();
    EXPECT_EQ(after_direct.planMisses, 1u)
        << "uncached compile must not touch the plan map";
    // Stage-level interning still applies: the direct plan's stages
    // share state with the cached plan's.
    ASSERT_EQ(direct.stageCount(), plan->stageCount());
    for (std::size_t s = 0; s < direct.stageCount(); ++s)
        EXPECT_EQ(direct.stage(s).sharedState(),
                  plan->stage(s).sharedState())
            << s;
}

/** Hit/miss/eviction counters and the resident gauges. */
TEST(PlanCacheCounters, HitMissEvictionAccounting)
{
    if (!PlanCache::instance().enabled())
        GTEST_SKIP() << "plan cache disabled via environment";
    CacheGuard guard;
    const EngineOptions opts = makeOptions("aqfp-sorter", 128);

    {
        const InferenceSession a(buildTinyCnn(3), opts);
        (void)a.engine();
        const std::size_t weighted = sharedStageCount(a.engine());
        ASSERT_GT(weighted, 0u);

        PlanCacheStats s = PlanCache::instance().stats();
        EXPECT_EQ(s.planMisses, 1u);
        EXPECT_EQ(s.planHits, 0u);
        EXPECT_EQ(s.stageMisses, weighted);
        EXPECT_EQ(s.stageHits, 0u);
        EXPECT_EQ(s.evictions, 0u);
        EXPECT_EQ(s.residentPlans, 1u);
        EXPECT_EQ(s.residentStages, weighted);
        EXPECT_GT(s.residentBytes, 0u);
        EXPECT_EQ(s.hits, s.planHits + s.stageHits);
        EXPECT_EQ(s.misses, s.planMisses + s.stageMisses);

        // Identical spec: one plan-level hit, no stage work at all.
        const InferenceSession b(buildTinyCnn(3), opts);
        (void)b.engine();
        s = PlanCache::instance().stats();
        EXPECT_EQ(s.planHits, 1u);
        EXPECT_EQ(s.planMisses, 1u);
        EXPECT_EQ(s.stageMisses, weighted);
        EXPECT_EQ(s.stageHits, 0u);
        EXPECT_EQ(s.residentBytes,
                  [&] {
                      std::size_t bytes = 0;
                      for (std::size_t i = 0;
                           i < a.engine().plan().stageCount(); ++i) {
                          if (const auto *shared =
                                  a.engine().plan().stage(i).sharedState())
                              bytes += shared->bytes;
                      }
                      return bytes;
                  }())
            << "two sessions, one resident copy";
    }
    // Engines destroyed: the weak entries expire and the next stats()
    // sweep counts them as evictions.
    const PlanCacheStats s = PlanCache::instance().stats();
    EXPECT_EQ(s.residentPlans, 0u);
    EXPECT_EQ(s.residentStages, 0u);
    EXPECT_EQ(s.residentBytes, 0u);
    EXPECT_GT(s.evictions, 0u);
}

/**
 * Two different models sharing an identical prefix layer share one
 * StageShared: same seed and same first-layer parameters put the
 * compiler RNG in the same pre-generation state, so the stage spec
 * matches even though the plans differ (a later layer was perturbed).
 * The perturbed model still scores bit-identically to its own cold
 * compile — the RNG fast-forward on the prefix hit kept the downstream
 * stream draws aligned.
 */
TEST(PlanCacheSharing, ModelsSharingALayerShareOneStageState)
{
    if (!PlanCache::instance().enabled())
        GTEST_SKIP() << "plan cache disabled via environment";
    CacheGuard guard;
    const auto samples = testImages(4);
    const EngineOptions opts = makeOptions("aqfp-sorter", 128);

    auto buildPerturbed = [] {
        nn::Network net = buildTinyCnn(3);
        // Perturb the final Dense layer's weights: the conv prefix stays
        // spec-identical, the plan does not.
        auto params = net.layer(net.layerCount() - 1).params();
        (*params[0])[0] += 0.25f;
        return net;
    };

    // Cold reference of the perturbed model before any sharing exists.
    PlanCache::instance().setEnabled(false);
    const InferenceSession cold_b(buildPerturbed(), opts);
    const std::uint64_t golden_b = scoreHash(cold_b.predict(samples));
    PlanCache::instance().setEnabled(true);
    PlanCache::instance().clear();

    const InferenceSession a(buildTinyCnn(3), opts);
    (void)a.engine();
    const InferenceSession b(buildPerturbed(), opts);
    (void)b.engine();

    EXPECT_NE(&a.engine().plan(), &b.engine().plan());
    const stages::StageShared *conv_a =
        a.engine().plan().stage(0).sharedState();
    const stages::StageShared *conv_b =
        b.engine().plan().stage(0).sharedState();
    ASSERT_NE(conv_a, nullptr);
    EXPECT_EQ(conv_a, conv_b)
        << "identical prefix layers must intern to one StageShared";

    // Every weighted stage ahead of the perturbed output layer is
    // shared: conv + hidden dense in the tiny zoo model.
    const PlanCacheStats s = PlanCache::instance().stats();
    EXPECT_EQ(s.planMisses, 2u);
    EXPECT_EQ(s.stageHits, sharedStageCount(a.engine()) - 1)
        << "all prefix stages shared, only the perturbed output differs";

    // Bit-identity survived the prefix hit.
    EXPECT_EQ(scoreHash(b.predict(samples)), golden_b);
}

/** ServingFrontend regression: identical (model, backend) pairs compile
 *  exactly once across tenants and across identically-registered
 *  models, and the health snapshot surfaces the cache counters. */
TEST(PlanCacheServing, OneCompilePerUniqueModelBackendPair)
{
    if (!PlanCache::instance().enabled())
        GTEST_SKIP() << "plan cache disabled via environment";
    CacheGuard guard;
    serving::FrontendOptions fopts;
    fopts.startPaused = true;
    serving::ServingFrontend fe(fopts);

    const EngineOptions opts = makeOptions("aqfp-sorter", 128);
    fe.addModel("m", buildTinyCnn(3), opts);
    fe.addModel("m2", buildTinyCnn(3), opts); // same content, new name

    serving::TenantConfig tenant;
    tenant.model = "m";
    tenant.name = "gold";
    fe.addTenant(tenant);
    tenant.name = "silver"; // same (model, backend): session-level reuse
    fe.addTenant(tenant);
    tenant.name = "bulk"; // same content via m2: plan-cache reuse
    tenant.model = "m2";
    fe.addTenant(tenant);

    const serving::HealthSnapshot health = fe.health();
    EXPECT_EQ(health.planCache.planMisses, 1u)
        << "one compile per unique (model, backend) pair";
    EXPECT_EQ(health.planCache.planHits, 1u)
        << "the identical twin model must hit";
    EXPECT_EQ(health.planCache.stageMisses,
              sharedStageCount(fe.model("m").engine()));
    EXPECT_EQ(&fe.model("m").engine().plan(),
              &fe.model("m2").engine().plan());
}

/**
 * Concurrent compile/destroy stress over overlapping specs: no lost
 * entries (equal specs always agree on one live plan), no use-after-free
 * on weak-ref expiry (sanitizer jobs run this in both dispatch modes),
 * and the counters add up: every internPlan call is classified as
 * exactly one of {hit, miss}.
 */
TEST(PlanCacheConcurrency, CompileDestroyStress)
{
    CacheGuard guard;
    const bool enabled = PlanCache::instance().enabled();
    const auto samples = testImages(1);
    const EngineOptions specs[] = {
        makeOptions("aqfp-sorter", 128),
        makeOptions("aqfp-sorter", 192),
        makeOptions("cmos-apc", 128),
        makeOptions("float-ref", 128),
    };
    constexpr int kThreads = 4;
    constexpr int kIterations = 6;
    std::atomic<std::uint64_t> compiles{0};
    std::atomic<int> failures{0};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIterations; ++i) {
                const EngineOptions &opts =
                    specs[static_cast<std::size_t>(t + i) %
                          std::size(specs)];
                const InferenceSession session(buildTinyCnn(3), opts);
                const ScNetworkEngine &engine = session.engine();
                compiles.fetch_add(1, std::memory_order_relaxed);
                const ScPrediction p = engine.infer(samples[0].image);
                if (p.scores.size() != 10)
                    failures.fetch_add(1, std::memory_order_relaxed);
                // Session (and engine, and plan strong ref) die here —
                // racing other threads' lookups of the same spec.
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(failures.load(), 0);
    const PlanCacheStats s = PlanCache::instance().stats();
    EXPECT_EQ(s.planHits + s.planMisses, compiles.load())
        << "every compile is exactly one of {hit, miss}";
    EXPECT_EQ(s.residentPlans, 0u) << "all engines destroyed";
    EXPECT_EQ(s.residentStages, 0u);
    EXPECT_EQ(s.residentBytes, 0u);
    if (enabled) {
        // Misses can exceed the spec count (weak entries expire between
        // generations, racing builds discard duplicates) but every miss
        // belongs to some spec generation — and hits never exceed the
        // compile total minus one miss per spec.
        EXPECT_GE(s.planMisses, std::size(specs));
        EXPECT_LE(s.planHits + s.planMisses, compiles.load() + 0u);
    } else {
        EXPECT_EQ(s.planMisses, compiles.load());
        EXPECT_EQ(s.planHits, 0u);
    }
}

/**
 * Pointer-equality under contention: many threads interning the same
 * spec while holding their engines alive must agree on one plan object.
 */
TEST(PlanCacheConcurrency, RacingIdenticalCompilesAgreeOnOnePlan)
{
    if (!PlanCache::instance().enabled())
        GTEST_SKIP() << "plan cache disabled via environment";
    CacheGuard guard;
    const EngineOptions opts = makeOptions("aqfp-sorter", 128);
    constexpr int kThreads = 8;
    std::vector<std::unique_ptr<InferenceSession>> sessions(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            sessions[static_cast<std::size_t>(t)] =
                std::make_unique<InferenceSession>(buildTinyCnn(3), opts);
            (void)sessions[static_cast<std::size_t>(t)]->engine();
        });
    }
    for (auto &th : threads)
        th.join();
    const stages::ExecutionPlan *plan = &sessions[0]->engine().plan();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(&sessions[static_cast<std::size_t>(t)]->engine().plan(),
                  plan)
            << t;
}

} // namespace
} // namespace aqfpsc::core
