/**
 * @file
 * Versioned model artifacts: architecture + quantization + weights
 * round-trip through saveModel/loadModel with bit-identical predictions
 * on every backend, corrupt files fail with actionable errors, and the
 * name-keyed model zoo resolves / rejects correctly.
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/fault_injection.h"
#include "core/model_zoo.h"
#include "core/session.h"
#include "core/status.h"
#include "data/digits.h"
#include "nn/layers.h"
#include "nn/network.h"

namespace aqfpsc {
namespace {

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

class TempFile
{
  public:
    explicit TempFile(const char *name)
        : path_(std::string("/tmp/aqfpsc_model_io_") + name)
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(ModelIo, RoundTripCarriesArchitectureAndQuantState)
{
    TempFile file("arch.model");
    nn::Network net = core::buildTinyCnn(9);
    EXPECT_EQ(net.quantBits(), 0);
    net.quantizeParams(10);
    EXPECT_EQ(net.quantBits(), 10);
    ASSERT_TRUE(net.saveModel(file.path()));

    // No architecture is built in code on the load side.
    const nn::Network loaded = nn::Network::loadModel(file.path());
    EXPECT_EQ(loaded.describe(), net.describe());
    EXPECT_EQ(loaded.quantBits(), 10);
    EXPECT_EQ(loaded.layerCount(), net.layerCount());
}

TEST(ModelIo, LoadedPredictionsBitIdenticalOnEveryBackend)
{
    TempFile file("bitexact.model");
    nn::Network net = core::buildTinyCnn(4);
    net.quantizeParams(10);
    ASSERT_TRUE(net.saveModel(file.path()));

    const auto samples = data::generateDigits(5, 31337);
    core::EngineOptions opts;
    opts.streamLen = 256;
    const core::InferenceSession inmem(std::move(net), opts);
    const core::InferenceSession loaded =
        core::InferenceSession::fromFile(file.path(), opts);

    for (const char *backend : {"aqfp-sorter", "cmos-apc", "float-ref"}) {
        SCOPED_TRACE(backend);
        const auto a = inmem.predict(samples, {}, backend);
        const auto b = loaded.predict(samples, {}, backend);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].label, b[i].label) << "image " << i;
            EXPECT_EQ(a[i].scores, b[i].scores) << "image " << i;
        }
    }
}

TEST(ModelIo, LoadModelRejectsMissingAndCorruptFiles)
{
    try {
        nn::Network::loadModel("/tmp/aqfpsc_does_not_exist.model");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_TRUE(contains(e.what(), "cannot open")) << e.what();
    }

    TempFile bad_magic("bad_magic.model");
    {
        std::ofstream out(bad_magic.path(), std::ios::binary);
        out << "NOTAMODL and then some bytes";
    }
    try {
        nn::Network::loadModel(bad_magic.path());
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_TRUE(contains(e.what(), "not an AQFPSC model file"))
            << e.what();
    }

    // Truncate a valid artifact inside the parameter payload.
    TempFile good("good.model");
    TempFile truncated("truncated.model");
    nn::Network net = core::buildTinyCnn(2);
    ASSERT_TRUE(net.saveModel(good.path()));
    {
        std::ifstream in(good.path(), std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        std::ofstream out(truncated.path(), std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }
    try {
        nn::Network::loadModel(truncated.path());
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_TRUE(contains(e.what(), "truncated")) << e.what();
    }
}

TEST(ModelIo, FailureTaxonomyDistinguishesTruncationFromCorruption)
{
    TempFile good("taxonomy.model");
    nn::Network net = core::buildTinyCnn(2);
    ASSERT_TRUE(net.saveModel(good.path()));
    std::string bytes;
    {
        std::ifstream in(good.path(), std::ios::binary);
        bytes.assign((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    }

    // Missing file: IoError, not a parse failure.
    try {
        nn::Network::loadModel("/tmp/aqfpsc_does_not_exist.model");
        FAIL() << "expected StatusError";
    } catch (const core::StatusError &e) {
        EXPECT_EQ(e.status().code, core::StatusCode::IoError);
    }

    // Wrong leading magic: a different format, i.e. corruption-class.
    TempFile bad_magic("taxonomy_magic.model");
    {
        std::ofstream out(bad_magic.path(), std::ios::binary);
        out << "NOTAMODL and then some bytes";
    }
    try {
        nn::Network::loadModel(bad_magic.path());
        FAIL() << "expected StatusError";
    } catch (const core::StatusError &e) {
        EXPECT_EQ(e.status().code, core::StatusCode::ModelCorrupted);
    }

    // A cut-off write loses the integrity footer: ModelTruncated, so
    // the operator knows to re-copy instead of suspecting bit rot.
    TempFile truncated("taxonomy_trunc.model");
    {
        std::ofstream out(truncated.path(), std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - 7));
    }
    try {
        nn::Network::loadModel(truncated.path());
        FAIL() << "expected StatusError";
    } catch (const core::StatusError &e) {
        EXPECT_EQ(e.status().code, core::StatusCode::ModelTruncated);
        EXPECT_TRUE(contains(e.what(), "truncated")) << e.what();
    }

    // A flipped payload bit keeps the footer but fails the checksum:
    // ModelCorrupted, with both checksums in the message.
    TempFile flipped("taxonomy_flip.model");
    {
        std::string mutated = bytes;
        mutated[mutated.size() / 3] ^= 0x10;
        std::ofstream out(flipped.path(), std::ios::binary);
        out.write(mutated.data(),
                  static_cast<std::streamsize>(mutated.size()));
    }
    try {
        nn::Network::loadModel(flipped.path());
        FAIL() << "expected StatusError";
    } catch (const core::StatusError &e) {
        EXPECT_EQ(e.status().code, core::StatusCode::ModelCorrupted);
        EXPECT_TRUE(contains(e.what(), "checksum")) << e.what();
    }
}

TEST(ModelIo, InjectedLoadCorruptionIsCaughtByTheChecksum)
{
    TempFile file("injected.model");
    nn::Network net = core::buildTinyCnn(2);
    ASSERT_TRUE(net.saveModel(file.path()));
    // The artifact on disk is pristine; the fault site flips one
    // payload byte after the read, exactly like memory corruption
    // between read and parse.  The checksum must catch it.
    core::FaultPlan plan(3);
    plan.arm(core::FaultSite::ModelLoadCorrupt, 1.0);
    core::ScopedFaultPlan scope(plan);
    try {
        nn::Network::loadModel(file.path());
        FAIL() << "expected StatusError";
    } catch (const core::StatusError &e) {
        EXPECT_EQ(e.status().code, core::StatusCode::ModelCorrupted);
    }
}

TEST(ModelIo, SaveIsAtomicAndFailsCleanlyOnUnwritablePaths)
{
    nn::Network net = core::buildTinyCnn(2);
    // Unwritable directory: saveModel reports failure instead of
    // throwing, and leaves no temp file behind.
    EXPECT_FALSE(net.saveModel("/nonexistent_dir/model.bin"));
    std::ifstream tmp("/nonexistent_dir/model.bin.tmp");
    EXPECT_FALSE(tmp.good());

    // A successful save leaves exactly the artifact, not the temp.
    TempFile file("atomic.model");
    ASSERT_TRUE(net.saveModel(file.path()));
    std::ifstream final_file(file.path(), std::ios::binary);
    EXPECT_TRUE(final_file.good());
    std::ifstream temp_file(file.path() + ".tmp");
    EXPECT_FALSE(temp_file.good());
}

TEST(ModelIo, WeightsOnlyFilesAreRejectedWithGuidance)
{
    TempFile weights("weights.bin");
    nn::Network net = core::buildTinyCnn(2);
    ASSERT_TRUE(net.saveWeights(weights.path()));
    try {
        nn::Network::loadModel(weights.path());
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_TRUE(contains(e.what(), "AQFPSCW1")) << e.what();
        EXPECT_TRUE(contains(e.what(), "loadWeights")) << e.what();
    }
}

TEST(ModelZoo, NameKeyedLookup)
{
    EXPECT_EQ(core::modelNames(),
              (std::vector<std::string>{"dnn", "snn", "tiny"}));
    EXPECT_EQ(core::buildModel("tiny", 3).describe(),
              core::buildTinyCnn(3).describe());
    EXPECT_EQ(core::buildModel("snn").describe(),
              core::buildSnn().describe());
    try {
        core::buildModel("mega");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(contains(e.what(), "unknown model 'mega'"))
            << e.what();
        EXPECT_TRUE(contains(e.what(), "dnn, snn, tiny")) << e.what();
    }
}

TEST(ModelZoo, MakeLayerRejectsBadSpecs)
{
    nn::LayerSpec bad_kind;
    bad_kind.kind = static_cast<nn::LayerSpec::Kind>(99);
    EXPECT_THROW(nn::makeLayer(bad_kind), std::invalid_argument);

    nn::LayerSpec even_kernel;
    even_kernel.kind = nn::LayerSpec::Kind::Conv2D;
    even_kernel.p0 = 1;
    even_kernel.p1 = 8;
    even_kernel.p2 = 4; // kernels must be odd
    EXPECT_THROW(nn::makeLayer(even_kernel), std::invalid_argument);
}

} // namespace
} // namespace aqfpsc
