/**
 * @file
 * Stage-major cohort execution: bit-identity with the per-image path.
 *
 * The cohort refactor's contract is that cohort size is a pure
 * throughput knob: per-image seeds (seed XOR index) are untouched and
 * every per-image state (counters, feedback carries, Btanh states,
 * MUX-select RNG positions, score accumulators) lives in its own cohort
 * slot, so predictions at any cohort size are bit-identical to the
 * per-image path — whose own outputs are pinned by the PR3 golden dump
 * (tests/test_fused_kernels.cc).  Coverage:
 *
 *  - full-stream predictions at cohort sizes 1/2/4/8 on all three
 *    registered backends (plus the approximate-APC path), against the
 *    per-image inferIndexed() reference, via a golden score hash;
 *  - adaptive early-exit cohorts (in-place compaction) against
 *    per-image inferAdaptive(), in both deterministic and lazy-substream
 *    modes, across thread counts;
 *  - cohort knob validation and workspace capacity clamping.
 */

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_runner.h"
#include "core/model_zoo.h"
#include "core/session.h"
#include "core/workspace.h"
#include "data/digits.h"

namespace aqfpsc::core {
namespace {

std::vector<nn::Sample>
testImages()
{
    return data::generateDigits(10, 33);
}

InferenceSession
makeSession(const std::string &backend, std::size_t stream_len,
            bool approx = false)
{
    EngineOptions opts;
    opts.backend = backend;
    opts.streamLen = stream_len;
    opts.approximateApc = approx;
    return InferenceSession(buildTinyCnn(3), opts);
}

/** FNV-1a over the hexfloat rendering of every score: any bit drift in
 *  any class of any image changes the hash. */
std::uint64_t
scoreHash(const std::vector<ScPrediction> &preds)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    char buf[64];
    for (const ScPrediction &p : preds) {
        for (const double v : p.scores) {
            std::snprintf(buf, sizeof(buf), "%a;", v);
            for (const char *c = buf; *c; ++c) {
                h ^= static_cast<unsigned char>(*c);
                h *= 0x100000001B3ULL;
            }
        }
    }
    return h;
}

TEST(Cohort, BitIdenticalAcrossCohortSizesOnEveryBackend)
{
    const auto samples = testImages();
    struct Case
    {
        const char *backend;
        std::size_t len;
        bool approx;
    };
    const Case cases[] = {
        {"aqfp-sorter", 192, false},
        {"aqfp-sorter", 100, false}, // non-multiple-of-64 tail
        {"cmos-apc", 192, false},
        {"cmos-apc", 192, true}, // OR-pair overcount path
        {"float-ref", 192, false},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(std::string(c.backend) +
                     " len=" + std::to_string(c.len) +
                     " approx=" + std::to_string(c.approx));
        const InferenceSession session =
            makeSession(c.backend, c.len, c.approx);
        const ScNetworkEngine &engine = session.engine();

        // The per-image reference path (pinned by the PR3 goldens).
        std::vector<ScPrediction> reference;
        for (std::size_t i = 0; i < samples.size(); ++i)
            reference.push_back(engine.inferIndexed(samples[i].image, i));
        const std::uint64_t golden = scoreHash(reference);

        for (const int cohort : {1, 2, 4, 8}) {
            SCOPED_TRACE("cohort=" + std::to_string(cohort));
            EvalOptions opts;
            opts.cohort = cohort;
            const std::vector<ScPrediction> preds =
                session.predict(samples, opts);
            ASSERT_EQ(preds.size(), reference.size());
            for (std::size_t i = 0; i < preds.size(); ++i) {
                EXPECT_EQ(preds[i].scores, reference[i].scores) << i;
                EXPECT_EQ(preds[i].label, reference[i].label) << i;
            }
            EXPECT_EQ(scoreHash(preds), golden);
        }
    }
}

/** Cohort results are independent of the worker-thread schedule. */
TEST(Cohort, ScheduleIndependentAcrossThreadCounts)
{
    const auto samples = testImages();
    const InferenceSession session = makeSession("aqfp-sorter", 128);
    const ScNetworkEngine &engine = session.engine();

    const std::vector<ScPrediction> base =
        BatchRunner(engine, 1, 1).run(samples);
    for (const int threads : {1, 2, 8}) {
        for (const int cohort : {3, 4}) { // incl. a ragged final cohort
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " cohort=" + std::to_string(cohort));
            const std::vector<ScPrediction> got =
                BatchRunner(engine, threads, cohort).run(samples);
            ASSERT_EQ(got.size(), base.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                EXPECT_EQ(got[i].scores, base[i].scores) << i;
        }
    }
}

/**
 * Adaptive cohorts compact in place as images clear the margin; every
 * retired image must have consumed exactly the checkpoint schedule of
 * the per-image adaptive path — in deterministic mode bit-identically,
 * and in lazy-substream mode too (per-block seeds derive only from the
 * image seed and block index, never from the cohort).
 */
TEST(Cohort, AdaptiveMatchesPerImageInBothModes)
{
    const auto samples = testImages();
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        const InferenceSession session = makeSession(backend, 512);
        const ScNetworkEngine &engine = session.engine();
        for (const bool deterministic : {true, false}) {
            SCOPED_TRACE(std::string(backend) + " det=" +
                         std::to_string(deterministic));
            AdaptivePolicy policy;
            policy.checkpointCycles = 128;
            policy.exitMargin = 0.1;
            policy.minCycles = 128;
            policy.deterministic = deterministic;

            std::vector<AdaptivePrediction> reference;
            for (std::size_t i = 0; i < samples.size(); ++i)
                reference.push_back(
                    engine.inferAdaptive(samples[i].image, i, policy));

            for (const int threads : {1, 2}) {
                for (const int cohort : {2, 8}) {
                    SCOPED_TRACE("threads=" + std::to_string(threads) +
                                 " cohort=" + std::to_string(cohort));
                    const std::vector<AdaptivePrediction> got =
                        BatchRunner(engine, threads, cohort)
                            .runAdaptive(samples, policy);
                    ASSERT_EQ(got.size(), reference.size());
                    for (std::size_t i = 0; i < got.size(); ++i) {
                        EXPECT_EQ(got[i].prediction.scores,
                                  reference[i].prediction.scores)
                            << i;
                        EXPECT_EQ(got[i].consumedCycles,
                                  reference[i].consumedCycles)
                            << i;
                        EXPECT_EQ(got[i].checkpoints,
                                  reference[i].checkpoints)
                            << i;
                        EXPECT_EQ(got[i].exitedEarly,
                                  reference[i].exitedEarly)
                            << i;
                    }
                }
            }
        }
    }
}

TEST(Cohort, EngineOptionsValidateCohortBounds)
{
    EngineOptions opts;
    opts.cohort = 1;
    EXPECT_TRUE(opts.validate().empty());
    opts.cohort = EngineOptions::kMaxCohort;
    EXPECT_TRUE(opts.validate().empty());
    opts.cohort = 0;
    EXPECT_FALSE(opts.validate().empty());
    opts.cohort = EngineOptions::kMaxCohort + 1;
    EXPECT_FALSE(opts.validate().empty());
}

TEST(Cohort, WorkspaceCapacityClamped)
{
    const InferenceSession session = makeSession("aqfp-sorter", 64);
    const ScNetworkEngine &engine = session.engine();
    EXPECT_EQ(CohortWorkspace(engine, 0).capacity(), 1u);
    EXPECT_EQ(CohortWorkspace(engine, 5).capacity(), 5u);
    EXPECT_EQ(CohortWorkspace(engine, 100000).capacity(),
              kMaxCohortImages);
}

} // namespace
} // namespace aqfpsc::core
