/**
 * @file
 * Integration tests: the SC inference engine against the float network,
 * the hardware report, and the model zoo.
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/hardware_report.h"
#include "core/model_zoo.h"
#include "core/sc_engine.h"
#include "data/digits.h"

namespace aqfpsc::core {
namespace {

/** Train the tiny CNN on a small synthetic digit set; cached per suite. */
class TrainedTinyCnn : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        net_ = new nn::Network(buildTinyCnn(3));
        train_ = new std::vector<nn::Sample>(data::generateDigits(600, 11));
        test_ = new std::vector<nn::Sample>(data::generateDigits(100, 999));
        nn::TrainConfig cfg;
        cfg.epochs = 4;
        cfg.learningRate = 0.08f;
        net_->train(*train_, cfg);
        net_->quantizeParams(10);
    }

    static void
    TearDownTestSuite()
    {
        delete net_;
        delete train_;
        delete test_;
        net_ = nullptr;
        train_ = nullptr;
        test_ = nullptr;
    }

    static nn::Network *net_;
    static std::vector<nn::Sample> *train_;
    static std::vector<nn::Sample> *test_;
};

nn::Network *TrainedTinyCnn::net_ = nullptr;
std::vector<nn::Sample> *TrainedTinyCnn::train_ = nullptr;
std::vector<nn::Sample> *TrainedTinyCnn::test_ = nullptr;

TEST_F(TrainedTinyCnn, FloatAccuracyIsHigh)
{
    EXPECT_GT(net_->evaluate(*test_), 0.85);
}

TEST_F(TrainedTinyCnn, AqfpScInferenceTracksFloat)
{
    ScEngineConfig cfg;
    cfg.streamLen = 1024;
    cfg.backendName = "aqfp-sorter";
    ScNetworkEngine engine(*net_, cfg);
    const double float_acc = net_->evaluate(*test_);
    const double sc_acc = engine.evaluate(*test_, {.limit = 40}).accuracy;
    EXPECT_GT(sc_acc, float_acc - 0.15);
}

TEST_F(TrainedTinyCnn, CmosScInferenceRuns)
{
    // The CMOS baseline scores classes with linear APC accumulation, so
    // it gets its own linear-output network (the majority-chain-trained
    // weights are specific to the AQFP output structure).
    nn::Network cmos_net;
    cmos_net.add(std::make_unique<nn::Conv2D>(1, 8, 3, 5));
    cmos_net.add(std::make_unique<nn::SorterTanh>());
    cmos_net.add(std::make_unique<nn::AvgPool2>());
    cmos_net.add(std::make_unique<nn::AvgPool2>());
    cmos_net.add(std::make_unique<nn::Dense>(7 * 7 * 8, 10, 6));
    nn::TrainConfig tcfg;
    tcfg.epochs = 4;
    tcfg.learningRate = 0.08f;
    cmos_net.train(*train_, tcfg);
    cmos_net.quantizeParams(10);

    ScEngineConfig cfg;
    cfg.streamLen = 1024;
    cfg.backendName = "cmos-apc";
    ScNetworkEngine engine(cmos_net, cfg);
    const double float_acc = cmos_net.evaluate(*test_);
    const double sc_acc = engine.evaluate(*test_, {.limit = 40}).accuracy;
    EXPECT_GT(float_acc, 0.8);
    EXPECT_GT(sc_acc, float_acc - 0.2);
}

TEST_F(TrainedTinyCnn, ScoresExposeRanking)
{
    ScEngineConfig cfg;
    cfg.streamLen = 512;
    ScNetworkEngine engine(*net_, cfg);
    const ScPrediction pred = engine.infer((*test_)[0].image);
    ASSERT_EQ(pred.scores.size(), 10u);
    for (std::size_t i = 0; i < pred.scores.size(); ++i) {
        EXPECT_LE(pred.scores[i],
                  pred.scores[static_cast<std::size_t>(pred.label)]);
    }
}

TEST_F(TrainedTinyCnn, LongerStreamsDoNotHurt)
{
    ScEngineConfig short_cfg, long_cfg;
    short_cfg.streamLen = 128;
    long_cfg.streamLen = 2048;
    ScNetworkEngine short_engine(*net_, short_cfg);
    ScNetworkEngine long_engine(*net_, long_cfg);
    const double short_acc =
        short_engine.evaluate(*test_, {.limit = 30}).accuracy;
    const double long_acc =
        long_engine.evaluate(*test_, {.limit = 30}).accuracy;
    EXPECT_GE(long_acc, short_acc - 0.1);
}

TEST(ScEngine, RejectsConvWithoutActivation)
{
    nn::Network net;
    net.add(std::make_unique<nn::Conv2D>(1, 2, 3, 1));
    net.add(std::make_unique<nn::Dense>(2 * 28 * 28, 10, 2));
    ScEngineConfig cfg;
    EXPECT_THROW(ScNetworkEngine(net, cfg), std::invalid_argument);
}

TEST(ScEngine, RejectsMissingOutputLayer)
{
    nn::Network net;
    net.add(std::make_unique<nn::Dense>(784, 10, 1));
    net.add(std::make_unique<nn::HardTanh>());
    ScEngineConfig cfg;
    EXPECT_THROW(ScNetworkEngine(net, cfg), std::invalid_argument);
}

TEST(ModelZoo, ArchitecturesMatchTable8)
{
    const nn::Network snn = buildSnn();
    EXPECT_EQ(snn.describe(),
              "Conv3x3x32-ScTanh-AvgPool2-Conv3x3x32-ScTanh-AvgPool2-"
              "FC500-ScTanh-FC800-ScTanh-MajChainFC10");
    const nn::Network dnn = buildDnn();
    EXPECT_EQ(dnn.describe(),
              "Conv3x3x32-ScTanh-Conv3x3x32-ScTanh-AvgPool2-"
              "Conv5x5x32-ScTanh-Conv5x5x32-ScTanh-AvgPool2-"
              "Conv7x7x64-ScTanh-FC500-ScTanh-FC800-ScTanh-MajChainFC10");
}

TEST(HardwareReport, TinyCnnTotals)
{
    const nn::Network net = buildTinyCnn(1);
    const NetworkHardware hw = analyzeNetworkHardware(net, 1024);
    ASSERT_EQ(hw.layers.size(), 5u); // conv, pool, pool, fc, out
    EXPECT_GT(hw.aqfpTotalJj, 0);
    EXPECT_GT(hw.aqfpSngJj, 0);
    EXPECT_GT(hw.aqfpEnergyPerImageJ, 0.0);
    EXPECT_GT(hw.cmosEnergyPerImageJ, hw.aqfpEnergyPerImageJ);
    EXPECT_GT(hw.aqfpThroughputImagesPerSec,
              hw.cmosThroughputImagesPerSec);
    // Weight streams: conv (8*9+8) + fc (392*64+64) + chain (64*10+10).
    EXPECT_EQ(hw.weightStreams,
              8 * 9 + 8 + 392 * 64 + 64 + 64 * 10 + 10);
    EXPECT_EQ(hw.inputStreams, 784);
}

TEST(HardwareReport, EnergyGrowsWithStreamLength)
{
    const nn::Network net = buildTinyCnn(1);
    const NetworkHardware a = analyzeNetworkHardware(net, 512);
    const NetworkHardware b = analyzeNetworkHardware(net, 1024);
    EXPECT_NEAR(b.aqfpEnergyPerImageJ / a.aqfpEnergyPerImageJ, 2.0, 1e-6);
    EXPECT_NEAR(b.aqfpThroughputImagesPerSec * 2.0,
                a.aqfpThroughputImagesPerSec, 1e-3);
}

TEST(HardwareReport, PerBlockCostsAreLegalizedNetlists)
{
    const nn::Network net = buildTinyCnn(1);
    const NetworkHardware hw = analyzeNetworkHardware(net, 1024);
    for (const auto &layer : hw.layers) {
        EXPECT_GT(layer.aqfpPerBlock.jj, 0) << layer.name;
        EXPECT_GT(layer.aqfpPerBlock.depthPhases, 0) << layer.name;
        EXPECT_GT(layer.cmosPerBlock.energyPerCycleJ, 0.0) << layer.name;
        EXPECT_GT(layer.instances, 0) << layer.name;
    }
}

} // namespace
} // namespace aqfpsc::core
