/**
 * @file
 * Tests for the Monte-Carlo accuracy measurement helpers that drive the
 * Table 1-3 / Fig. 13 benches: metric sanity, expected scaling trends
 * and cross-block relationships.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "blocks/accuracy.h"

namespace aqfpsc::blocks {
namespace {

AccuracyConfig
quickConfig()
{
    AccuracyConfig cfg;
    cfg.trials = 40;
    return cfg;
}

TEST(FeatureExtractionError, FallsWithStreamLength)
{
    const auto cfg = quickConfig();
    const double short_err = measureFeatureExtractionError(9, 128, cfg);
    const double long_err = measureFeatureExtractionError(9, 2048, cfg);
    EXPECT_LT(long_err, short_err);
}

TEST(FeatureExtractionError, FittedReferenceBelowClipReference)
{
    // In the active region the block tracks tanh(0.8 z), so measuring
    // against the fitted curve must give a smaller error than against
    // the ideal clip.
    const auto cfg = quickConfig();
    const double vs_clip = measureFeatureExtractionError(
        25, 1024, cfg, FeatureReference::ClippedSum);
    const double vs_fit = measureFeatureExtractionError(
        25, 1024, cfg, FeatureReference::FittedTanh);
    EXPECT_LT(vs_fit, vs_clip);
}

TEST(FeatureExtractionError, FullRangeWeightsInPaperBand)
{
    AccuracyConfig cfg = quickConfig();
    cfg.weightScale = 1.0;
    const double err = measureFeatureExtractionError(9, 1024, cfg);
    EXPECT_GT(err, 0.01);
    EXPECT_LT(err, 0.35);
}

TEST(PoolingError, FallsWithStreamLengthAndInputSize)
{
    const auto cfg = quickConfig();
    const double short_err = measurePoolingError(4, 128, cfg);
    const double long_err = measurePoolingError(4, 2048, cfg);
    EXPECT_LT(long_err, short_err);
    const double big_block = measurePoolingError(36, 1024, cfg);
    const double small_block = measurePoolingError(4, 1024, cfg);
    EXPECT_LT(big_block, small_block);
}

TEST(PoolingError, WellBelowFeatureExtractionError)
{
    const auto cfg = quickConfig();
    EXPECT_LT(measurePoolingError(9, 1024, cfg),
              0.5 * measureFeatureExtractionError(9, 1024, cfg));
}

TEST(CategorizationError, FallsWithStreamLength)
{
    AccuracyConfig cfg = quickConfig();
    cfg.trials = 10;
    const auto errs =
        measureCategorizationErrorRow(100, {128, 2048}, 10, 4096, cfg);
    ASSERT_EQ(errs.size(), 2u);
    EXPECT_LT(errs[1], errs[0]);
    EXPECT_LT(errs[1], 0.05);
}

TEST(CategorizationFlipMargin, BoundedAndPresentForRandomWeights)
{
    AccuracyConfig cfg = quickConfig();
    cfg.trials = 10;
    const auto margins =
        measureCategorizationFlipMargin(100, {512}, 10, cfg);
    ASSERT_EQ(margins.size(), 1u);
    EXPECT_GE(margins[0], 0.0);
    EXPECT_LE(margins[0], 1.0);
}

TEST(ActivationShape, MonotoneAndSaturating)
{
    AccuracyConfig cfg = quickConfig();
    cfg.trials = 10;
    const auto curve = measureActivationShape(9, 2048, -3.0, 3.0, 13, cfg);
    ASSERT_EQ(curve.size(), 13u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GT(curve[i].first, curve[i - 1].first);
        EXPECT_GE(curve[i].second, curve[i - 1].second - 0.08);
    }
    EXPECT_LT(curve.front().second, -0.9);
    EXPECT_GT(curve.back().second, 0.9);
    // Near zero the response passes through zero.
    EXPECT_NEAR(curve[6].second, 0.0, 0.12);
}

TEST(ActivationShape, TracksFittedTanh)
{
    AccuracyConfig cfg = quickConfig();
    cfg.trials = 15;
    const auto curve = measureActivationShape(25, 4096, -2.5, 2.5, 11, cfg);
    for (const auto &[z, v] : curve)
        EXPECT_NEAR(v, std::tanh(0.8 * z), 0.08) << "z=" << z;
}

} // namespace
} // namespace aqfpsc::blocks
