/**
 * @file
 * BackendRegistry seams: builtin registrations, the documented error
 * messages of compileNetwork/unknown backends, bit-exactness of the
 * float-ref backend against the float network, and — the acceptance
 * demonstration — a backend registered entirely outside the stage
 * compiler (from this test TU).
 */

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/backend_registry.h"
#include "core/model_zoo.h"
#include "core/sc_engine.h"
#include "data/digits.h"
#include "nn/layers.h"

namespace aqfpsc::core {
namespace {

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(BackendRegistry, BuiltinBackendsAreRegistered)
{
    const auto names = BackendRegistry::instance().names();
    auto has = [&](const char *n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("aqfp-sorter"));
    EXPECT_TRUE(has("cmos-apc"));
    EXPECT_TRUE(has("float-ref"));
}

TEST(BackendRegistry, ResolvedBackendDefaultsAndOverrides)
{
    // String names are the only selector (the ScBackend enum shim is
    // gone); a value-initialized config must resolve to the default
    // registered backend, and an explicit name must win.
    ScEngineConfig cfg;
    EXPECT_EQ(cfg.resolvedBackend(), "aqfp-sorter");
    cfg.backendName = "float-ref";
    EXPECT_EQ(cfg.resolvedBackend(), "float-ref");
    cfg.backendName.clear(); // legacy empty spelling stays valid
    EXPECT_EQ(cfg.resolvedBackend(), "aqfp-sorter");
}

TEST(BackendRegistry, UnknownBackendListsRegisteredNames)
{
    nn::Network net = buildTinyCnn(1);
    ScEngineConfig cfg;
    cfg.backendName = "does-not-exist";
    try {
        ScNetworkEngine engine(net, cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_TRUE(contains(msg, "unknown backend 'does-not-exist'"))
            << msg;
        EXPECT_TRUE(contains(msg, "registered backends:")) << msg;
        EXPECT_TRUE(contains(msg, "aqfp-sorter")) << msg;
        EXPECT_TRUE(contains(msg, "cmos-apc")) << msg;
        EXPECT_TRUE(contains(msg, "float-ref")) << msg;
    }
}

TEST(BackendRegistry, CompilerRejectsUnmappablePatterns)
{
    // Conv without a following activation.
    {
        nn::Network net;
        net.add(std::make_unique<nn::Conv2D>(1, 2, 3, 1));
        net.add(std::make_unique<nn::Dense>(2 * 28 * 28, 10, 2));
        try {
            ScNetworkEngine engine(net, {});
            FAIL() << "expected std::invalid_argument";
        } catch (const std::invalid_argument &e) {
            EXPECT_TRUE(contains(
                e.what(), "Conv2D needs a following activation"))
                << e.what();
        }
    }
    // A bare activation is unmappable (nothing to fuse it into).
    {
        nn::Network net;
        net.add(std::make_unique<nn::HardTanh>());
        net.add(std::make_unique<nn::Dense>(784, 10, 1));
        try {
            ScNetworkEngine engine(net, {});
            FAIL() << "expected std::invalid_argument";
        } catch (const std::invalid_argument &e) {
            EXPECT_TRUE(contains(e.what(), "unmappable layer HardTanh"))
                << e.what();
        }
    }
}

/**
 * The acceptance demonstration: a complete backend registered from this
 * TU — no edits to stage_compiler.cc (or any core file).  The backend
 * only serves networks that are a single output layer and scores every
 * class with a constant, which is all the test needs.
 */
class ConstantOutputStage final : public ScStage
{
  public:
    explicit ConstantOutputStage(int classes) : classes_(classes) {}
    std::string name() const override { return "ConstantOutput"; }
    bool terminal() const override { return true; }
    void runInto(const sc::StreamMatrix &, sc::StreamMatrix &,
                 StageContext &ctx, StageScratch *) const override
    {
        ctx.scores.assign(static_cast<std::size_t>(classes_), 0.0);
        for (int c = 0; c < classes_; ++c)
            ctx.scores[static_cast<std::size_t>(c)] = c == 1 ? 1.0 : 0.0;
    }

  private:
    int classes_;
};

const OutputStageRegistration kTestBackendOutput{
    "test-constant",
    [](const stages::DenseGeometry &g, WeightedStageInit) {
        return std::make_unique<ConstantOutputStage>(g.outFeatures);
    }};

const BackendTraitsRegistration kTestBackendTraits{
    "test-constant",
    BackendTraits{/*wantsParamStreams=*/false,
                  /*wantsInputStreams=*/false}};

TEST(BackendRegistry, BackendRegisteredOutsideCompilerServesInference)
{
    ASSERT_TRUE(BackendRegistry::instance().has("test-constant"));

    nn::Network net;
    net.add(std::make_unique<nn::Dense>(16, 4, 1));
    ScEngineConfig cfg;
    cfg.backendName = "test-constant";
    const ScNetworkEngine engine(net, cfg);

    nn::Tensor image({1, 4, 4});
    const ScPrediction pred = engine.infer(image);
    EXPECT_EQ(pred.label, 1);
    ASSERT_EQ(pred.scores.size(), 4u);
    EXPECT_EQ(pred.scores[1], 1.0);

    // An incomplete backend fails with the documented message when the
    // network needs a stage kind it never registered.
    nn::Network conv_net;
    conv_net.add(std::make_unique<nn::Conv2D>(1, 2, 3, 1));
    conv_net.add(std::make_unique<nn::HardTanh>());
    conv_net.add(std::make_unique<nn::Dense>(2 * 28 * 28, 10, 2));
    try {
        ScNetworkEngine engine2(conv_net, cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(contains(
            e.what(), "backend 'test-constant' registers no conv stage"))
            << e.what();
    }
}

TEST(BackendRegistry, FloatRefMatchesFloatNetworkBitExactly)
{
    nn::Network net = buildTinyCnn(7);
    net.quantizeParams(10);
    ScEngineConfig cfg;
    cfg.backendName = "float-ref";
    const ScNetworkEngine engine(net, cfg);

    const auto samples = data::generateDigits(12, 2026);
    for (const auto &s : samples) {
        const ScPrediction pred = engine.infer(s.image);
        const nn::Tensor scores = net.forward(s.image);
        ASSERT_EQ(pred.scores.size(), scores.size());
        for (std::size_t c = 0; c < scores.size(); ++c) {
            EXPECT_EQ(pred.scores[c], static_cast<double>(scores[c]))
                << "class " << c;
        }
        EXPECT_EQ(pred.label, net.predict(s.image));
    }
}

TEST(BackendRegistry, FloatRefIsDeterministicAcrossEnginesAndIndices)
{
    nn::Network net = buildTinyCnn(5);
    ScEngineConfig cfg;
    cfg.backendName = "float-ref";
    const ScNetworkEngine a(net, cfg);
    const ScNetworkEngine b(net, cfg);
    const auto samples = data::generateDigits(4, 99);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        // No SC randomness: the per-image index cannot change anything.
        const ScPrediction p0 = a.inferIndexed(samples[i].image, 0);
        const ScPrediction pi = a.inferIndexed(samples[i].image, i + 17);
        const ScPrediction q = b.infer(samples[i].image);
        EXPECT_EQ(p0.scores, pi.scores);
        EXPECT_EQ(p0.scores, q.scores);
    }
}

} // namespace
} // namespace aqfpsc::core
