/**
 * @file
 * ServingFrontend: configuration validation, bitwise determinism of
 * served results against the engine entry points for the *effective*
 * (possibly shed) policy, scheduling-order guarantees (weighted-fair
 * anti-starvation, strict priority, EDF), shed-before-reject overload
 * degradation, admission control via trySubmit, per-tenant stats
 * accounting, multi-model serving, and a concurrent submit/shutdown
 * fuzz (run under ASan/UBSan in CI, in both SIMD dispatch modes).
 *
 * Scheduling-order tests use FrontendOptions::startPaused: the backlog
 * is enqueued while no worker runs, so the pick sequence after start()
 * is a pure function of the policy — assertions are on
 * ServedResult::completionSeq, never on wall time.
 */

#include <atomic>
#include <future>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "data/digits.h"
#include "serving/frontend.h"

namespace aqfpsc::serving {
namespace {

std::vector<nn::Sample>
testImages(int n)
{
    return data::generateDigits(n, 77);
}

core::EngineOptions
engineOpts(std::size_t stream_len = 128)
{
    core::EngineOptions opts;
    opts.streamLen = stream_len;
    return opts;
}

/** Register the tiny CNN under model name "m" (ServingFrontend is
 *  neither copyable nor movable, so the caller owns it in place). */
void
addTinyModel(ServingFrontend &fe, std::size_t stream_len = 128)
{
    fe.addModel("m", core::buildTinyCnn(3), engineOpts(stream_len));
}

TenantConfig
tenant(const std::string &name, const std::string &model = "m")
{
    TenantConfig cfg;
    cfg.name = name;
    cfg.model = model;
    return cfg;
}

TEST(SchedPolicyNames, RoundTrip)
{
    for (const SchedPolicy p :
         {SchedPolicy::Fifo, SchedPolicy::Priority, SchedPolicy::Edf,
          SchedPolicy::WeightedFair}) {
        const auto parsed = parseSchedPolicy(schedPolicyName(p));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_FALSE(parseSchedPolicy("round-robin").has_value());
}

TEST(TenantConfigValidate, RejectsBadConfigs)
{
    TenantConfig ok = tenant("t");
    EXPECT_TRUE(ok.validate().empty());

    TenantConfig noName = tenant("");
    EXPECT_FALSE(noName.validate().empty());

    TenantConfig badWeight = tenant("t");
    badWeight.weight = 0.0;
    EXPECT_FALSE(badWeight.validate().empty());

    TenantConfig badQueue = tenant("t");
    badQueue.queueCapacity = 0;
    EXPECT_FALSE(badQueue.validate().empty());

    TenantConfig badDeadline = tenant("t");
    badDeadline.deadlineSeconds = -1.0;
    EXPECT_FALSE(badDeadline.validate().empty());

    // Shedding requires the adaptive path (there is no margin to
    // tighten otherwise), and the floors must actually be floors.
    TenantConfig shedNoAdaptive = tenant("t");
    shedNoAdaptive.shed.enabled = true;
    EXPECT_FALSE(shedNoAdaptive.validate().empty());

    TenantConfig shedBadFloor = tenant("t");
    shedBadFloor.adaptive = true;
    shedBadFloor.shed.enabled = true;
    shedBadFloor.shed.marginFloor = shedBadFloor.policy.exitMargin + 1.0;
    EXPECT_FALSE(shedBadFloor.validate().empty());

    TenantConfig shedBadLoads = tenant("t");
    shedBadLoads.adaptive = true;
    shedBadLoads.shed.enabled = true;
    shedBadLoads.shed.startLoad = 0.9;
    shedBadLoads.shed.fullLoad = 0.5;
    EXPECT_FALSE(shedBadLoads.validate().empty());

    TenantConfig shedOk = tenant("t");
    shedOk.adaptive = true;
    shedOk.shed.enabled = true;
    EXPECT_TRUE(shedOk.validate().empty());
}

TEST(ServingFrontendRegistration, ErrorsAreActionable)
{
    ServingFrontend fe({.startPaused = true});
    fe.addModel("m", core::buildTinyCnn(3), engineOpts());
    EXPECT_THROW(fe.addModel("m", core::buildTinyCnn(3), engineOpts()),
                 std::invalid_argument);
    EXPECT_THROW(fe.model("nope"), std::invalid_argument);

    EXPECT_THROW(fe.addTenant(tenant("t", "no-such-model")),
                 std::invalid_argument);
    TenantConfig badBackend = tenant("t");
    badBackend.backend = "no-such-backend";
    EXPECT_THROW(fe.addTenant(badBackend), std::invalid_argument);
    TenantConfig floatRefAdaptive = tenant("t");
    floatRefAdaptive.backend = "float-ref";
    floatRefAdaptive.adaptive = true;
    EXPECT_THROW(fe.addTenant(floatRefAdaptive), std::invalid_argument);

    fe.addTenant(tenant("t"));
    EXPECT_THROW(fe.addTenant(tenant("t")), std::invalid_argument);
    EXPECT_THROW(fe.submit("nope", testImages(1)[0].image),
                 std::invalid_argument);

    fe.start();
    EXPECT_THROW(fe.addModel("late", core::buildTinyCnn(3), engineOpts()),
                 std::logic_error);
    EXPECT_THROW(fe.addTenant(tenant("late")), std::logic_error);
}

/**
 * Served predictions are the pure function (model, backend, requestId,
 * effective policy): for every result, recomputing through the engine
 * entry points with the *reported* effective policy reproduces the
 * scores bit for bit — across scheduling policies, worker counts and
 * adaptive/non-adaptive tenants.
 */
TEST(ServingFrontend, ResultsMatchEngineBitwise)
{
    const auto samples = testImages(8);
    for (const SchedPolicy policy :
         {SchedPolicy::Fifo, SchedPolicy::WeightedFair}) {
        for (const int workers : {1, 2}) {
            ServingFrontend fe(
                {.workers = workers, .maxBatch = 3, .policy = policy});
            addTinyModel(fe);
            TenantConfig plain = tenant("plain");
            TenantConfig adaptive = tenant("adaptive");
            adaptive.adaptive = true;
            adaptive.policy.checkpointCycles = 64;
            adaptive.policy.exitMargin = 0.1;
            adaptive.policy.minCycles = 64;
            fe.addTenant(plain);
            fe.addTenant(adaptive);

            std::vector<std::pair<std::size_t,
                                  std::future<ServedResult>>>
                futures;
            for (std::size_t i = 0; i < samples.size(); ++i) {
                futures.emplace_back(
                    i, fe.submit(i % 2 ? "adaptive" : "plain",
                                 samples[i].image));
            }
            const core::ScNetworkEngine &engine = fe.model("m").engine();
            for (auto &[i, f] : futures) {
                const ServedResult r = f.get();
                SCOPED_TRACE("policy=" +
                             std::string(schedPolicyName(policy)) +
                             " workers=" + std::to_string(workers) +
                             " i=" + std::to_string(i));
                if (r.adaptive) {
                    const core::AdaptivePrediction ref =
                        engine.inferAdaptive(samples[i].image, r.requestId,
                                             r.effectivePolicy);
                    EXPECT_EQ(r.prediction.scores, ref.prediction.scores);
                    EXPECT_EQ(r.consumedCycles, ref.consumedCycles);
                    EXPECT_EQ(r.exitedEarly, ref.exitedEarly);
                } else {
                    const core::ScPrediction ref = engine.inferIndexed(
                        samples[i].image, r.requestId);
                    EXPECT_EQ(r.prediction.scores, ref.scores);
                    EXPECT_EQ(r.consumedCycles, 128u);
                }
            }
        }
    }
}

/** Two tenants on two different models: each result matches its own
 *  model's engine, never the other's. */
TEST(ServingFrontend, MultiModelRouting)
{
    const auto samples = testImages(4);
    ServingFrontend fe({.workers = 1});
    fe.addModel("a", core::buildTinyCnn(3), engineOpts());
    fe.addModel("b", core::buildTinyCnn(5), engineOpts());
    fe.addTenant(tenant("ta", "a"));
    fe.addTenant(tenant("tb", "b"));

    std::vector<std::future<ServedResult>> fa, fb;
    for (const auto &s : samples) {
        fa.push_back(fe.submit("ta", s.image));
        fb.push_back(fe.submit("tb", s.image));
    }
    const core::ScNetworkEngine &ea = fe.model("a").engine();
    const core::ScNetworkEngine &eb = fe.model("b").engine();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const ServedResult ra = fa[i].get();
        const ServedResult rb = fb[i].get();
        EXPECT_EQ(ra.prediction.scores,
                  ea.inferIndexed(samples[i].image, ra.requestId).scores);
        EXPECT_EQ(rb.prediction.scores,
                  eb.inferIndexed(samples[i].image, rb.requestId).scores);
    }
    EXPECT_EQ(fe.tenantStats("ta").completed, samples.size());
    EXPECT_EQ(fe.tenantStats("tb").completed, samples.size());
}

/**
 * Weighted-fair anti-starvation: a greedy tenant with a 40-request
 * backlog cannot starve a low-rate tenant.  With the backlog enqueued
 * before start() (paused front end, one worker), the low-rate tenant's
 * requests must complete among the first few scheduler picks — bounded
 * wait asserted through completionSeq, independent of wall time.
 */
TEST(ServingFrontendScheduling, WeightedFairPreventsStarvation)
{
    const auto samples = testImages(4);
    constexpr int kGreedy = 40;
    ServingFrontend fe({.workers = 1,
                        .maxBatch = 4,
                        .policy = SchedPolicy::WeightedFair,
                        .startPaused = true});
    addTinyModel(fe, 64);
    TenantConfig greedy = tenant("greedy");
    greedy.weight = 1.0;
    greedy.queueCapacity = 64;
    TenantConfig low = tenant("low");
    low.weight = 1.0;
    fe.addTenant(greedy);
    fe.addTenant(low);

    std::vector<std::future<ServedResult>> greedyFutures;
    for (int i = 0; i < kGreedy; ++i)
        greedyFutures.push_back(
            fe.submit("greedy", samples[i % 4].image));
    auto lowFuture = fe.submit("low", samples[0].image);

    fe.start();
    const ServedResult lowResult = lowFuture.get();
    // Equal weights: after the first greedy batch (maxBatch = 4) the
    // greedy tenant's pass is ahead, so the low tenant's single request
    // is the second pick — completionSeq in [4, 8).  Assert the
    // conservative half-backlog bound (a FIFO scheduler would put it
    // dead last at seq 40).
    EXPECT_LT(lowResult.completionSeq,
              static_cast<std::uint64_t>(kGreedy / 2));
    for (auto &f : greedyFutures)
        f.get();
    fe.shutdown();
    EXPECT_EQ(fe.tenantStats("greedy").completed,
              static_cast<std::uint64_t>(kGreedy));
    EXPECT_EQ(fe.tenantStats("low").completed, 1u);
}

/** FIFO control for the test above: arrival order is served, so the
 *  late low-rate request IS dead last.  Pins that the fairness result
 *  comes from the policy, not from scheduling noise. */
TEST(ServingFrontendScheduling, FifoServesArrivalOrder)
{
    const auto samples = testImages(4);
    constexpr int kGreedy = 12;
    ServingFrontend fe({.workers = 1,
                        .maxBatch = 4,
                        .policy = SchedPolicy::Fifo,
                        .startPaused = true});
    addTinyModel(fe, 64);
    TenantConfig greedy = tenant("greedy");
    greedy.queueCapacity = 16;
    fe.addTenant(greedy);
    fe.addTenant(tenant("low"));

    std::vector<std::future<ServedResult>> greedyFutures;
    for (int i = 0; i < kGreedy; ++i)
        greedyFutures.push_back(
            fe.submit("greedy", samples[i % 4].image));
    auto lowFuture = fe.submit("low", samples[0].image);
    fe.start();
    EXPECT_EQ(lowFuture.get().completionSeq,
              static_cast<std::uint64_t>(kGreedy));
    for (auto &f : greedyFutures)
        f.get();
}

/** Strict priority: the high-priority tenant's backlog is served
 *  before any low-priority request, regardless of arrival order. */
TEST(ServingFrontendScheduling, StrictPriorityOrdersTenants)
{
    const auto samples = testImages(4);
    ServingFrontend fe({.workers = 1,
                        .maxBatch = 2,
                        .policy = SchedPolicy::Priority,
                        .startPaused = true});
    addTinyModel(fe, 64);
    TenantConfig lowPrio = tenant("low");
    lowPrio.priority = 0;
    TenantConfig highPrio = tenant("high");
    highPrio.priority = 5;
    fe.addTenant(lowPrio);
    fe.addTenant(highPrio);

    // Low-priority requests arrive FIRST; high-priority must still win.
    std::vector<std::future<ServedResult>> lowF, highF;
    for (int i = 0; i < 4; ++i)
        lowF.push_back(fe.submit("low", samples[i % 4].image));
    for (int i = 0; i < 4; ++i)
        highF.push_back(fe.submit("high", samples[i % 4].image));
    fe.start();
    for (auto &f : highF)
        EXPECT_LT(f.get().completionSeq, 4u);
    for (auto &f : lowF)
        EXPECT_GE(f.get().completionSeq, 4u);
}

/** EDF: the tenant with the tighter deadline budget is served first
 *  even when its requests arrived last. */
TEST(ServingFrontendScheduling, EdfOrdersByDeadline)
{
    const auto samples = testImages(4);
    ServingFrontend fe({.workers = 1,
                        .maxBatch = 2,
                        .policy = SchedPolicy::Edf,
                        .startPaused = true});
    addTinyModel(fe, 64);
    TenantConfig lax = tenant("lax");
    lax.deadlineSeconds = 3600.0;
    TenantConfig urgent = tenant("urgent");
    urgent.deadlineSeconds = 30.0;
    fe.addTenant(lax);
    fe.addTenant(urgent);

    std::vector<std::future<ServedResult>> laxF, urgentF;
    for (int i = 0; i < 4; ++i)
        laxF.push_back(fe.submit("lax", samples[i % 4].image));
    for (int i = 0; i < 4; ++i)
        urgentF.push_back(fe.submit("urgent", samples[i % 4].image));
    fe.start();
    for (auto &f : urgentF) {
        const ServedResult r = f.get();
        EXPECT_LT(r.completionSeq, 4u);
        EXPECT_FALSE(r.deadlineMissed);
        EXPECT_DOUBLE_EQ(r.deadlineSeconds, 30.0);
    }
    for (auto &f : laxF)
        EXPECT_GE(f.get().completionSeq, 4u);
}

/**
 * Shed-before-reject: a backlog past the shed band's startLoad is
 * served under a tightened margin (shed flag set, effective margin
 * strictly below the base, bounded by the floor), the tightened policy
 * still reproduces the engine bitwise, and per-tenant stats count the
 * shed completions.
 */
TEST(ServingFrontend, SheddingTightensMarginUnderBacklog)
{
    const auto samples = testImages(4);
    ServingFrontend fe({.workers = 1, .maxBatch = 4, .startPaused = true});
    addTinyModel(fe, 512);
    TenantConfig cfg = tenant("t");
    cfg.queueCapacity = 16;
    cfg.adaptive = true;
    cfg.policy.checkpointCycles = 64;
    cfg.policy.exitMargin = 0.4;
    cfg.policy.minCycles = 256;
    cfg.shed.enabled = true;
    cfg.shed.startLoad = 0.25;
    cfg.shed.fullLoad = 1.0;
    cfg.shed.marginFloor = 0.05;
    cfg.shed.minCyclesFloor = 64;
    fe.addTenant(cfg);

    std::vector<std::future<ServedResult>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(fe.submit("t", samples[i % 4].image));
    fe.start();

    const core::ScNetworkEngine &engine = fe.model("m").engine();
    std::size_t shedCount = 0;
    for (auto &f : futures) {
        const ServedResult r = f.get();
        if (r.shed) {
            ++shedCount;
            EXPECT_LT(r.effectivePolicy.exitMargin, 0.4);
            EXPECT_GE(r.effectivePolicy.exitMargin, 0.05);
            EXPECT_GE(r.effectivePolicy.minCycles, 64u);
            EXPECT_LE(r.effectivePolicy.minCycles, 256u);
        } else {
            EXPECT_DOUBLE_EQ(r.effectivePolicy.exitMargin, 0.4);
        }
        // Determinism holds for the effective policy, shed or not.
        const core::AdaptivePrediction ref = engine.inferAdaptive(
            samples[r.requestId % 4].image, r.requestId,
            r.effectivePolicy);
        EXPECT_EQ(r.prediction.scores, ref.prediction.scores);
        EXPECT_EQ(r.consumedCycles, ref.consumedCycles);
    }
    // The first pick sees 16/16 pending (load 1.0 > 0.25): sheds.
    EXPECT_GT(shedCount, 0u);
    fe.shutdown();
    EXPECT_EQ(fe.tenantStats("t").shedServed, shedCount);
}

/** Admission control: a full tenant queue rejects via trySubmit
 *  (nullopt) and submit (throw); both are counted per tenant. */
TEST(ServingFrontend, AdmissionControlRejectsWhenFull)
{
    const auto samples = testImages(1);
    ServingFrontend fe({.workers = 1, .startPaused = true});
    addTinyModel(fe, 64);
    TenantConfig cfg = tenant("t");
    cfg.queueCapacity = 3;
    fe.addTenant(cfg);

    std::vector<std::future<ServedResult>> futures;
    for (int i = 0; i < 3; ++i) {
        auto f = fe.trySubmit("t", samples[0].image);
        ASSERT_TRUE(f.has_value());
        futures.push_back(std::move(*f));
    }
    EXPECT_FALSE(fe.trySubmit("t", samples[0].image).has_value());
    EXPECT_THROW(fe.submit("t", samples[0].image), std::runtime_error);
    EXPECT_EQ(fe.tenantStats("t").rejected, 2u);
    EXPECT_EQ(fe.tenantStats("t").queueDepth, 3u);
    EXPECT_EQ(fe.tenantStats("t").queueDepthHighWater, 3u);

    fe.start();
    for (auto &f : futures)
        EXPECT_EQ(f.get().prediction.scores.size(), 10u);
    fe.shutdown();
    EXPECT_FALSE(fe.trySubmit("t", samples[0].image).has_value());
    EXPECT_THROW(fe.submit("t", samples[0].image), std::runtime_error);
    EXPECT_FALSE(fe.accepting());

    const TenantStats stats = fe.tenantStats("t");
    EXPECT_EQ(stats.submitted, 3u);
    EXPECT_EQ(stats.completed, 3u);
    EXPECT_EQ(stats.queueDepth, 0u);
    EXPECT_EQ(stats.queueHistogram.total(), 3u);
    EXPECT_EQ(stats.serviceHistogram.total(), 3u);
    EXPECT_DOUBLE_EQ(stats.avgConsumedCycles, 64.0);
}

/** shutdown() on a paused, never-started front end still drains every
 *  accepted request (the pool spins up on demand). */
TEST(ServingFrontend, ShutdownDrainsWithoutStart)
{
    const auto samples = testImages(2);
    std::vector<std::future<ServedResult>> futures;
    {
        ServingFrontend fe({.workers = 1, .startPaused = true});
        addTinyModel(fe, 64);
        fe.addTenant(tenant("t"));
        for (int i = 0; i < 4; ++i)
            futures.push_back(fe.submit("t", samples[i % 2].image));
        // ~ServingFrontend runs shutdown() here.
    }
    for (auto &f : futures)
        EXPECT_EQ(f.get().prediction.scores.size(), 10u);
}

/**
 * Concurrent submit/shutdown fuzz over two tenants (one adaptive):
 * every trySubmit either yields a future that becomes ready with a
 * value, or a counted reject; accounting balances exactly.  Run under
 * ASan/UBSan in CI, in both SIMD dispatch modes.
 */
TEST(ServingFrontend, ConcurrentSubmitShutdownFuzz)
{
    const auto samples = testImages(4);
    for (int round = 0; round < 3; ++round) {
        auto fe = std::make_unique<ServingFrontend>(FrontendOptions{
            .workers = 2,
            .maxBatch = 3,
            .policy = SchedPolicy::WeightedFair});
        fe->addModel("m", core::buildTinyCnn(3), engineOpts(64));
        TenantConfig a = tenant("a");
        a.queueCapacity = 4; // small: exercises the reject path
        TenantConfig b = tenant("b");
        b.queueCapacity = 4;
        b.adaptive = true;
        b.policy.checkpointCycles = 64;
        b.policy.minCycles = 0;
        b.shed.enabled = true;
        b.shed.startLoad = 0.25;
        b.shed.minCyclesFloor = 0;
        fe->addTenant(a);
        fe->addTenant(b);

        constexpr int kProducers = 4;
        constexpr int kPerProducer = 12;
        std::atomic<int> accepted{0};
        std::atomic<int> rejected{0};
        std::atomic<int> served{0};
        std::vector<std::thread> producers;
        producers.reserve(kProducers);
        for (int p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                const std::string name = p % 2 ? "a" : "b";
                for (int i = 0; i < kPerProducer; ++i) {
                    auto f = fe->trySubmit(
                        name,
                        samples[static_cast<std::size_t>((p + i) % 4)]
                            .image);
                    if (!f) {
                        rejected.fetch_add(1);
                        continue;
                    }
                    accepted.fetch_add(1);
                    const ServedResult r = f->get();
                    if (r.prediction.scores.size() == 10)
                        served.fetch_add(1);
                }
            });
        }
        std::thread stopper([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            fe->shutdown();
        });
        for (auto &t : producers)
            t.join();
        stopper.join();

        EXPECT_EQ(accepted.load() + rejected.load(),
                  kProducers * kPerProducer);
        EXPECT_EQ(served.load(), accepted.load());
        const TenantStats sa = fe->tenantStats("a");
        const TenantStats sb = fe->tenantStats("b");
        EXPECT_EQ(sa.submitted + sb.submitted,
                  static_cast<std::uint64_t>(accepted.load()));
        EXPECT_EQ(sa.completed + sb.completed,
                  static_cast<std::uint64_t>(accepted.load()));
        EXPECT_EQ(sa.failed + sb.failed, 0u);
        fe.reset(); // destructor path after explicit shutdown
    }
}

} // namespace
} // namespace aqfpsc::serving
