/**
 * @file
 * Adaptive (early-exit) inference: the deterministic-mode bit-exactness
 * contract against the non-adaptive path, exit-point independence from
 * the checkpoint granularity, policy validation, batched adaptive
 * evaluation stats, and rejection on non-resumable backends.
 */

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "core/session.h"
#include "core/workspace.h"
#include "data/digits.h"

namespace aqfpsc::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<nn::Sample>
testImages(int n)
{
    return data::generateDigits(n, 77);
}

/** Session on the tiny zoo CNN with a given backend/stream length. */
InferenceSession
makeSession(const std::string &backend, std::size_t stream_len,
            bool approximate_apc = false)
{
    EngineOptions opts;
    opts.backend = backend;
    opts.streamLen = stream_len;
    opts.approximateApc = approximate_apc;
    return InferenceSession(buildTinyCnn(3), opts);
}

/**
 * The headline contract: with exitMargin = infinity (no image ever
 * exits) the checkpointed execution must still cover the whole stream —
 * through every resume boundary the granularity induces — and end up
 * bit-identical to the one-pass non-adaptive result.  Granularities
 * cover: finest (64), the default (128), a non-power-of-two multiple
 * (192), and >= streamLen (degenerate single block).
 */
TEST(AdaptiveInference, InfiniteMarginMatchesNonAdaptiveBitwise)
{
    const auto samples = testImages(4);
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        // 100 exercises the non-multiple-of-64 tail in the last block.
        for (const std::size_t len : {std::size_t{192}, std::size_t{100}}) {
            const InferenceSession session = makeSession(backend, len);
            const ScNetworkEngine &engine = session.engine();
            StageWorkspace ws(engine);
            for (const std::size_t granularity :
                 {std::size_t{64}, std::size_t{128}, std::size_t{192},
                  std::size_t{1024}}) {
                AdaptivePolicy policy;
                policy.checkpointCycles = granularity;
                policy.exitMargin = kInf;
                for (std::size_t i = 0; i < samples.size(); ++i) {
                    const ScPrediction ref =
                        engine.inferIndexed(samples[i].image, i);
                    const AdaptivePrediction adaptive =
                        engine.inferAdaptive(samples[i].image, i, ws,
                                             policy);
                    SCOPED_TRACE(std::string(backend) + " len=" +
                                 std::to_string(len) + " granularity=" +
                                 std::to_string(granularity) + " image=" +
                                 std::to_string(i));
                    EXPECT_EQ(adaptive.prediction.label, ref.label);
                    EXPECT_EQ(adaptive.prediction.scores, ref.scores);
                    EXPECT_EQ(adaptive.consumedCycles, len);
                    EXPECT_FALSE(adaptive.exitedEarly);
                }
            }
        }
    }
}

/** The approximate-APC overcount path must survive resume as well. */
TEST(AdaptiveInference, ApproximateApcMatchesNonAdaptiveBitwise)
{
    const auto samples = testImages(2);
    const InferenceSession session = makeSession("cmos-apc", 192, true);
    const ScNetworkEngine &engine = session.engine();
    StageWorkspace ws(engine);
    AdaptivePolicy policy;
    policy.checkpointCycles = 64;
    policy.exitMargin = kInf;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const ScPrediction ref = engine.inferIndexed(samples[i].image, i);
        const AdaptivePrediction adaptive =
            engine.inferAdaptive(samples[i].image, i, ws, policy);
        EXPECT_EQ(adaptive.prediction.scores, ref.scores);
        EXPECT_EQ(adaptive.prediction.label, ref.label);
    }
}

/**
 * Exit-point independence: an image exiting at cycle C must carry the
 * same scores no matter how many checkpoints led up to C.  Forced exit
 * (margin 0) at C = 128 via two 64-cycle blocks + a minCycles floor is
 * compared against a single 128-cycle block.
 */
TEST(AdaptiveInference, ExitScoresIndependentOfGranularity)
{
    const auto samples = testImages(4);
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        const InferenceSession session = makeSession(backend, 512);
        const ScNetworkEngine &engine = session.engine();
        StageWorkspace ws(engine);

        AdaptivePolicy fine;
        fine.checkpointCycles = 64;
        fine.exitMargin = 0.0;
        fine.minCycles = 128;
        AdaptivePolicy coarse;
        coarse.checkpointCycles = 128;
        coarse.exitMargin = 0.0;
        coarse.minCycles = 0;

        for (std::size_t i = 0; i < samples.size(); ++i) {
            const AdaptivePrediction a =
                engine.inferAdaptive(samples[i].image, i, ws, fine);
            const AdaptivePrediction b =
                engine.inferAdaptive(samples[i].image, i, ws, coarse);
            SCOPED_TRACE(std::string(backend) + " image=" +
                         std::to_string(i));
            EXPECT_EQ(a.consumedCycles, 128u);
            EXPECT_EQ(b.consumedCycles, 128u);
            EXPECT_TRUE(a.exitedEarly);
            EXPECT_EQ(a.prediction.scores, b.prediction.scores);
            EXPECT_EQ(a.prediction.label, b.prediction.label);
            EXPECT_EQ(a.checkpoints, 2u);
            EXPECT_EQ(b.checkpoints, 1u);
        }
    }
}

/** Margin 0 exits at the very first checkpoint. */
TEST(AdaptiveInference, ZeroMarginExitsAtFirstCheckpoint)
{
    const auto samples = testImages(1);
    const InferenceSession session = makeSession("aqfp-sorter", 512);
    const ScNetworkEngine &engine = session.engine();
    StageWorkspace ws(engine);
    AdaptivePolicy policy;
    policy.checkpointCycles = 64;
    policy.exitMargin = 0.0;
    policy.minCycles = 0;
    const AdaptivePrediction p =
        engine.inferAdaptive(samples[0].image, 0, ws, policy);
    EXPECT_EQ(p.consumedCycles, 64u);
    EXPECT_TRUE(p.exitedEarly);
    EXPECT_EQ(p.checkpoints, 1u);
    EXPECT_EQ(p.prediction.scores.size(), 10u);
}

/**
 * Workspace reuse across modes must not leak state: interleaving
 * adaptive and non-adaptive inferences through one workspace leaves
 * every result identical to a fresh-workspace run.
 */
TEST(AdaptiveInference, WorkspaceReuseAcrossModesIsClean)
{
    const auto samples = testImages(3);
    const InferenceSession session = makeSession("cmos-apc", 192);
    const ScNetworkEngine &engine = session.engine();
    AdaptivePolicy policy;
    policy.checkpointCycles = 64;
    policy.exitMargin = 0.0;
    policy.minCycles = 0; // exit at 64 of 192: leaves resumed state behind

    StageWorkspace shared(engine);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const AdaptivePrediction adaptive =
            engine.inferAdaptive(samples[i].image, i, shared, policy);
        const ScPrediction full =
            engine.inferIndexed(samples[i].image, i, shared);

        StageWorkspace fresh_a(engine);
        const AdaptivePrediction ref_adaptive =
            engine.inferAdaptive(samples[i].image, i, fresh_a, policy);
        StageWorkspace fresh_b(engine);
        const ScPrediction ref_full =
            engine.inferIndexed(samples[i].image, i, fresh_b);

        EXPECT_EQ(adaptive.prediction.scores,
                  ref_adaptive.prediction.scores);
        EXPECT_EQ(adaptive.consumedCycles, ref_adaptive.consumedCycles);
        EXPECT_EQ(full.scores, ref_full.scores);
    }
}

/**
 * Non-deterministic mode (lazy per-block SNG substreams) is a different
 * Monte-Carlo draw, not a different computation: it must run to the
 * same structural outcome and be reproducible for a fixed (seed, index).
 */
TEST(AdaptiveInference, NonDeterministicModeIsSelfConsistent)
{
    const auto samples = testImages(2);
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        const InferenceSession session = makeSession(backend, 192);
        const ScNetworkEngine &engine = session.engine();
        StageWorkspace ws(engine);
        AdaptivePolicy policy;
        policy.checkpointCycles = 64;
        policy.exitMargin = kInf;
        policy.deterministic = false;
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const AdaptivePrediction a =
                engine.inferAdaptive(samples[i].image, i, ws, policy);
            const AdaptivePrediction b =
                engine.inferAdaptive(samples[i].image, i, ws, policy);
            EXPECT_EQ(a.consumedCycles, 192u);
            EXPECT_EQ(a.prediction.scores, b.prediction.scores);
            EXPECT_EQ(a.prediction.scores.size(), 10u);
        }
    }
}

TEST(AdaptivePolicy, ValidateTable)
{
    EXPECT_TRUE(AdaptivePolicy{}.validate().empty());

    AdaptivePolicy p;
    p.checkpointCycles = 100; // not a multiple of 64
    EXPECT_FALSE(p.validate().empty());
    p.checkpointCycles = 0;
    EXPECT_FALSE(p.validate().empty());
    p.checkpointCycles = 64;
    p.exitMargin = -0.1;
    EXPECT_FALSE(p.validate().empty());
    p.exitMargin = kInf; // "never exit" is legal
    EXPECT_TRUE(p.validate().empty());

    // EngineOptions folds the policy into its own validation.
    EngineOptions opts;
    opts.adaptive.checkpointCycles = 65;
    const auto errors = opts.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("adaptive:"), std::string::npos);

    // And the engine rejects invalid policies at the call site.
    const InferenceSession session = makeSession("aqfp-sorter", 128);
    const auto image = testImages(1)[0].image;
    AdaptivePolicy bad;
    bad.checkpointCycles = 63;
    EXPECT_THROW(session.engine().inferAdaptive(image, 0, bad),
                 std::invalid_argument);
}

/** float-ref computes in the value domain: not resumable, and says so. */
TEST(AdaptiveInference, FloatRefIsRejectedWithDiagnostic)
{
    const InferenceSession session = makeSession("float-ref", 128);
    const ScNetworkEngine &engine = session.engine();
    std::string why_not;
    EXPECT_FALSE(engine.supportsAdaptive(&why_not));
    EXPECT_FALSE(why_not.empty());

    const auto image = testImages(1)[0].image;
    try {
        engine.inferAdaptive(image, 0, AdaptivePolicy{});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("not resumable"),
                  std::string::npos);
    }
    // Stream backends support it.
    EXPECT_TRUE(makeSession("aqfp-sorter", 128)
                    .engine()
                    .supportsAdaptive(nullptr));
}

/**
 * Batched adaptive evaluation: infinite margin reproduces the
 * non-adaptive accuracy exactly (it IS the same computation), reports
 * full-length consumption and zero exits; margin 0 consumes exactly one
 * checkpoint per image; results are thread-count independent.
 */
TEST(AdaptiveInference, EvaluateAdaptiveStats)
{
    const auto samples = testImages(8);
    EngineOptions opts;
    opts.backend = "aqfp-sorter";
    opts.streamLen = 192;
    opts.adaptive.checkpointCycles = 64;
    opts.adaptive.exitMargin = kInf;
    const InferenceSession session(buildTinyCnn(3), opts);

    const ScEvalStats plain = session.evaluate(samples);
    const AdaptiveEvalStats never = session.evaluateAdaptive(samples);
    EXPECT_DOUBLE_EQ(never.stats.accuracy, plain.accuracy);
    EXPECT_EQ(never.stats.images, samples.size());
    EXPECT_DOUBLE_EQ(never.avgConsumedCycles, 192.0);
    EXPECT_EQ(never.earlyExits, 0u);

    AdaptivePolicy always;
    always.checkpointCycles = 64;
    always.exitMargin = 0.0;
    always.minCycles = 0;
    const AdaptiveEvalStats first =
        session.engine().evaluateAdaptive(samples, always, {});
    EXPECT_DOUBLE_EQ(first.avgConsumedCycles, 64.0);
    EXPECT_EQ(first.earlyExits, samples.size());

    // Thread-count independence of the deterministic adaptive batch.
    const auto one =
        session.engine().evaluateAdaptive(samples, always, {.threads = 1});
    const auto four =
        session.engine().evaluateAdaptive(samples, always, {.threads = 4});
    EXPECT_DOUBLE_EQ(one.stats.accuracy, four.stats.accuracy);
    EXPECT_DOUBLE_EQ(one.avgConsumedCycles, four.avgConsumedCycles);
}

} // namespace
} // namespace aqfpsc::core
