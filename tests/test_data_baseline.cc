/**
 * @file
 * Unit tests for the synthetic digit dataset and the CMOS SC baseline
 * (SC-DCNN blocks and the CMOS cost model).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/cmos_model.h"
#include "baseline/sc_dcnn.h"
#include "data/digits.h"
#include "sc/sng.h"

namespace aqfpsc {
namespace {

TEST(Digits, DeterministicBySeed)
{
    const auto a = data::generateDigits(20, 99);
    const auto b = data::generateDigits(20, 99);
    const auto c = data::generateDigits(20, 100);
    ASSERT_EQ(a.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(a[static_cast<std::size_t>(i)].label,
                  b[static_cast<std::size_t>(i)].label);
        for (std::size_t p = 0; p < a[static_cast<std::size_t>(i)].image.size(); ++p)
            ASSERT_FLOAT_EQ(a[static_cast<std::size_t>(i)].image[p],
                            b[static_cast<std::size_t>(i)].image[p]);
    }
    // Different seed produces different pixels.
    int diffs = 0;
    for (std::size_t p = 0; p < a[0].image.size(); ++p)
        diffs += a[0].image[p] != c[0].image[p] ? 1 : 0;
    EXPECT_GT(diffs, 100);
}

TEST(Digits, BalancedLabels)
{
    const auto samples = data::generateDigits(100, 5);
    std::vector<int> counts(10, 0);
    for (const auto &s : samples)
        ++counts[static_cast<std::size_t>(s.label)];
    for (int d = 0; d < 10; ++d)
        EXPECT_EQ(counts[static_cast<std::size_t>(d)], 10);
}

TEST(Digits, PixelsInBipolarRange)
{
    const auto samples = data::generateDigits(10, 7);
    for (const auto &s : samples) {
        ASSERT_EQ(s.image.shape(),
                  (std::vector<int>{1, 28, 28}));
        for (std::size_t p = 0; p < s.image.size(); ++p) {
            ASSERT_GE(s.image[p], -1.0f);
            ASSERT_LE(s.image[p], 1.0f);
        }
    }
}

TEST(Digits, GlyphsHaveInk)
{
    data::DigitGenConfig cfg;
    cfg.noiseStd = 0.0;
    const auto samples = data::generateDigits(10, 3, cfg);
    for (const auto &s : samples) {
        double ink = 0.0;
        for (std::size_t p = 0; p < s.image.size(); ++p)
            ink += (s.image[p] + 1.0) / 2.0;
        EXPECT_GT(ink, 30.0) << "digit " << s.label;
        EXPECT_LT(ink, 400.0) << "digit " << s.label;
    }
}

TEST(Digits, ClassesAreDistinguishable)
{
    // Noise-free renderings of different digits differ in many pixels.
    data::DigitGenConfig cfg;
    cfg.noiseStd = 0.0;
    cfg.maxShift = 0.0;
    cfg.maxRotateDeg = 0.0;
    cfg.minScale = cfg.maxScale = 1.0;
    const auto samples = data::generateDigits(10, 1, cfg);
    for (int i = 0; i < 10; ++i) {
        for (int j = i + 1; j < 10; ++j) {
            double dist = 0.0;
            for (std::size_t p = 0; p < samples[0].image.size(); ++p) {
                const double d =
                    samples[static_cast<std::size_t>(i)].image[p] -
                    samples[static_cast<std::size_t>(j)].image[p];
                dist += d * d;
            }
            EXPECT_GT(dist, 10.0) << i << " vs " << j;
        }
    }
}

// --------------------------------------------------------- SC-DCNN

TEST(Btanh, StepSaturatesAndCenters)
{
    int state = 8; // s_max/2 for m = 8
    // Feeding max counts drives the output to 1.
    for (int i = 0; i < 10; ++i)
        baseline::ApcFeatureExtraction::btanhStep(state, 8, 8, 16);
    EXPECT_EQ(state, 15);
    EXPECT_TRUE(baseline::ApcFeatureExtraction::btanhStep(state, 8, 8, 16));
    // Feeding zero counts drives it to 0.
    for (int i = 0; i < 10; ++i)
        baseline::ApcFeatureExtraction::btanhStep(state, 0, 8, 16);
    EXPECT_EQ(state, 0);
    EXPECT_FALSE(baseline::ApcFeatureExtraction::btanhStep(state, 0, 8, 16));
}

TEST(ApcFeatureExtraction, TracksTanhOfSum)
{
    // For a moderate positive sum, the Btanh output value approximates
    // tanh(z); the check is loose (it is an approximation by design).
    const int m = 9;
    baseline::ApcFeatureExtraction block(m, /*approximate_apc=*/false);
    sc::Xoshiro256StarStar rng(71);
    const std::size_t len = 8192;
    for (double z : {-1.5, -0.5, 0.0, 0.5, 1.5}) {
        std::vector<sc::Bitstream> products;
        for (int j = 0; j < m; ++j)
            products.push_back(sc::encodeBipolar(z / m, 10, len, rng));
        const double got = block.run(products).bipolarValue();
        EXPECT_NEAR(got, std::tanh(z), 0.25) << "z=" << z;
        if (z > 0.5) {
            EXPECT_GT(got, 0.0);
        }
        if (z < -0.5) {
            EXPECT_LT(got, 0.0);
        }
    }
}

TEST(ApcFeatureExtraction, ApproximateApcBiasesUp)
{
    // The OR-layer approximation overcounts, so the approximate variant
    // never reports a smaller value than the exact one on the same input.
    const int m = 8;
    baseline::ApcFeatureExtraction exact(m, false);
    baseline::ApcFeatureExtraction approx(m, true);
    sc::Xoshiro256StarStar rng(72);
    std::vector<sc::Bitstream> products;
    for (int j = 0; j < m; ++j)
        products.push_back(sc::encodeBipolar(0.1, 10, 2048, rng));
    EXPECT_GE(approx.run(products).countOnes(),
              exact.run(products).countOnes());
}

TEST(MuxAveragePooling, UnbiasedMean)
{
    const int m = 4;
    baseline::MuxAveragePooling mux(m);
    sc::Xoshiro256StarStar rng(73);
    const std::size_t len = 16384;
    std::vector<sc::Bitstream> ins;
    double sum = 0.0;
    for (int j = 0; j < m; ++j) {
        const double v = -0.5 + 0.4 * j;
        sum += v;
        ins.push_back(sc::encodeBipolar(v, 10, len, rng));
    }
    EXPECT_NEAR(mux.run(ins, rng).bipolarValue(), sum / m, 0.05);
}

TEST(MuxAveragePooling, NoisierThanSorterPooling)
{
    // The ablation claim (Sec. 4.3): MUX pooling has higher variance.
    // Estimated by repeated runs at short stream length.
    const int m = 16;
    baseline::MuxAveragePooling mux(m);
    sc::Xoshiro256StarStar rng(74);
    const std::size_t len = 256;
    double mux_err = 0.0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
        std::vector<sc::Bitstream> ins;
        double sum = 0.0;
        for (int j = 0; j < m; ++j) {
            const double v = 2.0 * rng.nextDouble() - 1.0;
            sum += sc::codeToBipolar(sc::quantizeBipolar(v, 10), 10);
            ins.push_back(sc::encodeBipolar(v, 10, len, rng));
        }
        mux_err += std::abs(mux.run(ins, rng).bipolarValue() - sum / m);
    }
    mux_err /= trials;
    // Sorter pooling at the same length is far below this (Table 2
    // reports ~0.014 at N=128, M=16); MUX noise is sqrt(M)-ish larger.
    EXPECT_GT(mux_err, 0.03);
}

// ------------------------------------------------------- cost model

TEST(CmosModel, SngCost)
{
    const auto c = baseline::cmosSngCost(10);
    EXPECT_GT(c.gates, 0);
    EXPECT_EQ(c.flops, 10);
    EXPECT_GT(c.energyPerCycleJ, 0.0);
    EXPECT_GT(c.latencySeconds, 0.0);
    EXPECT_NEAR(c.energyPerStreamJ(1024), c.energyPerCycleJ * 1024, 1e-20);
}

TEST(CmosModel, FeatureExtractionScalesWithInputs)
{
    double prev = 0.0;
    for (int m : {9, 25, 49, 81, 121, 500, 800}) {
        const auto c = baseline::cmosFeatureExtractionCost(m);
        EXPECT_GT(c.energyPerCycleJ, prev) << "m=" << m;
        prev = c.energyPerCycleJ;
    }
}

TEST(CmosModel, PoolingCheaperThanFeatureExtraction)
{
    EXPECT_LT(baseline::cmosMuxPoolingCost(16).energyPerCycleJ,
              baseline::cmosFeatureExtractionCost(16).energyPerCycleJ);
}

TEST(CmosModel, CategorizationScalesWithInputs)
{
    EXPECT_LT(baseline::cmosCategorizationCost(100).energyPerCycleJ,
              baseline::cmosCategorizationCost(800).energyPerCycleJ);
}

} // namespace
} // namespace aqfpsc
