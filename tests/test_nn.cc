/**
 * @file
 * Unit tests for the DNN substrate: tensors, layer forward/backward
 * (numeric gradient checks), training convergence, serialization and
 * quantization.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/network.h"
#include "nn/tensor.h"

namespace aqfpsc::nn {
namespace {

TEST(Tensor, ShapeAndAccess)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.size(), 24u);
    t.at(1, 2, 3) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2, 3), 5.0f);
    EXPECT_FLOAT_EQ(t[23], 5.0f);
    EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
}

TEST(Conv2D, HandComputedCase)
{
    // 1x3x3 input, 1 output channel, 3x3 kernel, same padding: the
    // centre output is the full correlation sum.
    Conv2D conv(1, 1, 3, 1);
    auto params = conv.params();
    std::vector<float> &w = *params[0];
    std::vector<float> &b = *params[1];
    for (std::size_t i = 0; i < 9; ++i)
        w[i] = static_cast<float>(i + 1) * 0.01f;
    b[0] = 0.5f;

    Tensor x({1, 3, 3});
    for (int i = 0; i < 9; ++i)
        x[static_cast<std::size_t>(i)] = static_cast<float>(i);

    const Tensor y = conv.forward(x);
    ASSERT_EQ(y.shape(), (std::vector<int>{1, 3, 3}));
    float expect_centre = 0.5f;
    for (int i = 0; i < 9; ++i)
        expect_centre += w[static_cast<std::size_t>(i)] *
                         x[static_cast<std::size_t>(i)];
    EXPECT_NEAR(y.at(0, 1, 1), expect_centre, 1e-5);
    // Corner output only sees the 2x2 overlap.
    float expect_corner = 0.5f;
    for (int ky = 1; ky < 3; ++ky)
        for (int kx = 1; kx < 3; ++kx)
            expect_corner += w[static_cast<std::size_t>(ky * 3 + kx)] *
                             x.at(0, ky - 1, kx - 1);
    EXPECT_NEAR(y.at(0, 0, 0), expect_corner, 1e-5);
}

/**
 * Numeric gradient check: perturb each input element and compare the
 * finite difference of a scalar loss (sum of outputs weighted by a fixed
 * random mask) against the layer's backward pass.
 */
void
gradientCheck(Layer &layer, Tensor x, double tol)
{
    const Tensor y0 = layer.forward(x);
    // Loss = sum_i mask_i * y_i with a deterministic mask.
    Tensor mask({static_cast<int>(y0.size())});
    for (std::size_t i = 0; i < y0.size(); ++i)
        mask[i] = 0.1f + 0.03f * static_cast<float>(i % 7);

    Tensor grad_in = layer.backward(mask);
    ASSERT_EQ(grad_in.size(), x.size());

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < x.size(); i += 7) { // sample positions
        Tensor xp = x;
        xp[i] += eps;
        const Tensor yp = layer.forward(xp);
        Tensor xm = x;
        xm[i] -= eps;
        const Tensor ym = layer.forward(xm);
        double fd = 0.0;
        for (std::size_t j = 0; j < yp.size(); ++j)
            fd += mask[j] * (yp[j] - ym[j]);
        fd /= 2.0 * eps;
        EXPECT_NEAR(grad_in[i], fd, tol) << "element " << i;
    }
}

TEST(Conv2D, GradientCheck)
{
    Conv2D conv(2, 3, 3, 7);
    Tensor x({2, 5, 5});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.1f * static_cast<float>(static_cast<int>(i % 11) - 5);
    gradientCheck(conv, x, 1e-2);
}

TEST(Dense, GradientCheck)
{
    Dense fc(12, 5, 3);
    Tensor x({12});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.05f * static_cast<float>(static_cast<int>(i) - 6);
    gradientCheck(fc, x, 1e-3);
}

TEST(AvgPool2, GradientCheck)
{
    AvgPool2 pool;
    Tensor x({2, 4, 4});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.02f * static_cast<float>(i);
    gradientCheck(pool, x, 1e-4);
}

TEST(HardTanh, ForwardClips)
{
    HardTanh act;
    Tensor x({4});
    x[0] = -2.0f;
    x[1] = -0.5f;
    x[2] = 0.5f;
    x[3] = 3.0f;
    const Tensor y = act.forward(x);
    EXPECT_FLOAT_EQ(y[0], -1.0f);
    EXPECT_FLOAT_EQ(y[1], -0.5f);
    EXPECT_FLOAT_EQ(y[2], 0.5f);
    EXPECT_FLOAT_EQ(y[3], 1.0f);
}

TEST(HardTanh, GradientMasksSaturation)
{
    HardTanh act;
    Tensor x({3});
    x[0] = -2.0f;
    x[1] = 0.3f;
    x[2] = 1.5f;
    act.forward(x);
    Tensor g({3});
    g[0] = g[1] = g[2] = 1.0f;
    const Tensor gx = act.backward(g);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 1.0f);
    EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(SorterTanh, ForwardMatchesTanh)
{
    SorterTanh act;
    Tensor x({3});
    x[0] = -2.0f;
    x[1] = 0.0f;
    x[2] = 1.0f;
    const Tensor y = act.forward(x);
    EXPECT_NEAR(y[0], std::tanh(-1.6), 1e-6);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_NEAR(y[2], std::tanh(0.8), 1e-6);
}

TEST(SorterTanh, GradientCheck)
{
    SorterTanh act;
    Tensor x({8});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.4f * static_cast<float>(static_cast<int>(i) - 4);
    gradientCheck(act, x, 1e-3);
}

TEST(MajorityChainDense, ChainValueMatchesExplicitFold)
{
    MajorityChainDense chain(5, 1, 17);
    Tensor x({5});
    for (int i = 0; i < 5; ++i)
        x[static_cast<std::size_t>(i)] = 0.2f * (i - 2);
    // Explicit fold: products u0..u4, bias; k_total = 6 (even) -> one
    // neutral pad.
    const auto &w = chain.weights();
    const float b = chain.biases()[0];
    auto maj = [](double a, double p, double q) {
        return 0.5 * (a + p + q - a * p * q);
    };
    std::vector<double> u(7, 0.0);
    for (int i = 0; i < 5; ++i)
        u[static_cast<std::size_t>(i)] =
            w[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
    u[5] = b;
    u[6] = 0.0; // pad
    double acc = maj(u[0], u[1], u[2]);
    acc = maj(acc, u[3], u[4]);
    acc = maj(acc, u[5], u[6]);
    EXPECT_NEAR(chain.chainValue(x, 0), acc, 1e-6);
    const Tensor y = chain.forward(x);
    EXPECT_NEAR(y[0], acc * MajorityChainDense::kLogitGain, 1e-5);
}

TEST(MajorityChainDense, GradientCheck)
{
    MajorityChainDense chain(9, 4, 23);
    Tensor x({9});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.15f * static_cast<float>(static_cast<int>(i) - 4);
    gradientCheck(chain, x, 2e-2);
}

TEST(MajorityChainDense, LateInputsDominate)
{
    // The chain halves earlier contributions at every stage; verify the
    // documented exponential attenuation.
    MajorityChainDense chain(21, 1, 31);
    Tensor x({21});
    const double base = chain.chainValue(x, 0); // all-zero inputs
    Tensor x_early = x, x_late = x;
    x_early[0] = 1.0f;
    x_late[20] = 1.0f;
    const double d_early =
        std::abs(chain.chainValue(x_early, 0) - base);
    const double d_late = std::abs(chain.chainValue(x_late, 0) - base);
    EXPECT_GT(d_late, 4.0 * d_early);
}

TEST(AvgPool2, Forward)
{
    AvgPool2 pool;
    Tensor x({1, 2, 2});
    x[0] = 1.0f;
    x[1] = 2.0f;
    x[2] = 3.0f;
    x[3] = 6.0f;
    const Tensor y = pool.forward(x);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(Dense, WeightsClampedAfterUpdate)
{
    Dense fc(2, 1, 5);
    Tensor x({2});
    x[0] = 10.0f;
    x[1] = -10.0f;
    for (int i = 0; i < 50; ++i) {
        fc.forward(x);
        Tensor g({1});
        g[0] = -5.0f; // large gradient pushing weights out of range
        fc.backward(g);
        fc.update(1.0f, 0.0f);
    }
    for (float w : fc.weights())
        EXPECT_LE(std::abs(w), 1.0f);
}

TEST(Network, TrainsOnLinearlySeparableTask)
{
    // Tiny 2-class problem on 1x4x4 images: class = brightest half.
    Network net;
    net.add(std::make_unique<Dense>(16, 8, 11));
    net.add(std::make_unique<HardTanh>());
    net.add(std::make_unique<Dense>(8, 2, 12));

    std::vector<Sample> samples;
    for (int i = 0; i < 200; ++i) {
        Sample s;
        s.image = Tensor({1, 4, 4});
        s.label = i % 2;
        for (int p = 0; p < 16; ++p) {
            const bool top = p < 8;
            const float base = (s.label == 0) == top ? 0.6f : -0.6f;
            s.image[static_cast<std::size_t>(p)] =
                base + 0.05f * static_cast<float>((i * 7 + p) % 5 - 2);
        }
        samples.push_back(std::move(s));
    }
    TrainConfig cfg;
    cfg.epochs = 20;
    cfg.learningRate = 0.1f;
    net.train(samples, cfg);
    EXPECT_GT(net.evaluate(samples), 0.95);
}

TEST(Network, SaveLoadRoundTrip)
{
    Network a;
    a.add(std::make_unique<Dense>(4, 3, 21));
    a.add(std::make_unique<HardTanh>());
    a.add(std::make_unique<Dense>(3, 2, 22));

    const std::string path = "/tmp/aqfpsc_weights_test.bin";
    ASSERT_TRUE(a.saveWeights(path));

    Network b;
    b.add(std::make_unique<Dense>(4, 3, 99));
    b.add(std::make_unique<HardTanh>());
    b.add(std::make_unique<Dense>(3, 2, 98));
    ASSERT_TRUE(b.loadWeights(path));

    Tensor x({4});
    x[0] = 0.3f;
    x[1] = -0.2f;
    x[2] = 0.9f;
    x[3] = -0.7f;
    const Tensor ya = a.forward(x);
    const Tensor yb = b.forward(x);
    for (std::size_t i = 0; i < ya.size(); ++i)
        EXPECT_FLOAT_EQ(ya[i], yb[i]);
    std::remove(path.c_str());
}

TEST(Network, LoadRejectsWrongShape)
{
    Network a;
    a.add(std::make_unique<Dense>(4, 3, 21));
    const std::string path = "/tmp/aqfpsc_weights_bad.bin";
    ASSERT_TRUE(a.saveWeights(path));
    Network b;
    b.add(std::make_unique<Dense>(5, 3, 21));
    EXPECT_FALSE(b.loadWeights(path));
    std::remove(path.c_str());
}

TEST(Network, QuantizeSnapsToGrid)
{
    Network net;
    net.add(std::make_unique<Dense>(4, 4, 31));
    net.quantizeParams(4); // coarse 4-bit grid: step 1/8
    const auto *fc = dynamic_cast<const Dense *>(&net.layer(0));
    ASSERT_NE(fc, nullptr);
    for (float w : fc->weights()) {
        const float steps = (w + 1.0f) * 8.0f;
        EXPECT_NEAR(steps, std::round(steps), 1e-4) << w;
    }
}

TEST(Network, Describe)
{
    Network net;
    net.add(std::make_unique<Conv2D>(1, 8, 3, 1));
    net.add(std::make_unique<HardTanh>());
    net.add(std::make_unique<Dense>(10, 5, 2));
    EXPECT_EQ(net.describe(), "Conv3x3x8-HardTanh-FC5");
}

TEST(Softmax, SumsToOneAndOrders)
{
    Tensor scores({3});
    scores[0] = 1.0f;
    scores[1] = 3.0f;
    scores[2] = -2.0f;
    const auto p = softmax(scores);
    EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-9);
    EXPECT_GT(p[1], p[0]);
    EXPECT_GT(p[0], p[2]);
}

} // namespace
} // namespace aqfpsc::nn
