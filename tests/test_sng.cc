/**
 * @file
 * Unit tests for stochastic number generation (sng.h, stream_matrix.h).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sc/sng.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::sc {
namespace {

TEST(Quantize, UnipolarEndpoints)
{
    EXPECT_EQ(quantizeUnipolar(0.0, 8), 0u);
    EXPECT_EQ(quantizeUnipolar(1.0, 8), 256u);
    EXPECT_EQ(quantizeUnipolar(0.5, 8), 128u);
    // Out-of-range values clip.
    EXPECT_EQ(quantizeUnipolar(-2.0, 8), 0u);
    EXPECT_EQ(quantizeUnipolar(3.0, 8), 256u);
}

TEST(Quantize, BipolarEndpoints)
{
    EXPECT_EQ(quantizeBipolar(-1.0, 8), 0u);
    EXPECT_EQ(quantizeBipolar(1.0, 8), 256u);
    EXPECT_EQ(quantizeBipolar(0.0, 8), 128u);
}

TEST(Quantize, RoundTripErrorBounded)
{
    const int bits = 10;
    for (double x = -1.0; x <= 1.0; x += 0.01) {
        const double back = codeToBipolar(quantizeBipolar(x, bits), bits);
        EXPECT_NEAR(back, x, 1.0 / (1 << bits));
    }
}

TEST(Sng, StreamValueMatchesCode)
{
    Xoshiro256StarStar rng(11);
    const int bits = 10;
    const std::size_t len = 4096;
    for (double x : {-0.9, -0.5, 0.0, 0.25, 0.7, 1.0}) {
        const Bitstream s = encodeBipolar(x, bits, len, rng);
        // 5-sigma binomial band.
        const double p = (x + 1.0) / 2.0;
        const double sigma = std::sqrt(p * (1 - p) / len);
        EXPECT_NEAR(s.unipolarValue(), p, 5 * sigma + 1.0 / (1 << bits))
            << "x=" << x;
    }
}

TEST(Sng, ExtremeCodesAreExact)
{
    Xoshiro256StarStar rng(12);
    EXPECT_EQ(encodeBipolar(1.0, 8, 512, rng).countOnes(), 512u);
    EXPECT_EQ(encodeBipolar(-1.0, 8, 512, rng).countOnes(), 0u);
}

TEST(SngBank, MatrixDimIsOdd)
{
    SngBank even(10, SngBank::Mode::SharedMatrix, 1);
    SngBank odd(9, SngBank::Mode::SharedMatrix, 1);
    EXPECT_EQ(even.matrixDim(), 11);
    EXPECT_EQ(odd.matrixDim(), 9);
}

class SngBankModeTest : public ::testing::TestWithParam<SngBank::Mode>
{
};

TEST_P(SngBankModeTest, ValuesReproduced)
{
    SngBank bank(10, GetParam(), 77);
    const std::vector<double> values = {-0.8, -0.3, 0.0, 0.4, 0.9};
    const std::size_t len = 4096;
    const auto streams = bank.generateBipolar(values, len);
    ASSERT_EQ(streams.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_NEAR(streams[i].bipolarValue(), values[i], 0.07)
            << "value " << values[i];
    }
}

TEST_P(SngBankModeTest, StreamsAreUncorrelated)
{
    SngBank bank(10, GetParam(), 3);
    const auto streams =
        bank.generateBipolar(std::vector<double>(8, 0.0), 8192);
    for (std::size_t i = 0; i < streams.size(); ++i) {
        for (std::size_t j = i + 1; j < streams.size(); ++j) {
            const double agree = static_cast<double>(
                streams[i].xnorWith(streams[j]).countOnes()) / 8192.0;
            EXPECT_NEAR(agree, 0.5, 0.04) << i << "," << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, SngBankModeTest,
                         ::testing::Values(SngBank::Mode::SharedMatrix,
                                           SngBank::Mode::IndependentRng));

TEST(SngBank, SharedMatrixAllocatesMatrices)
{
    SngBank bank(10, SngBank::Mode::SharedMatrix, 5);
    // 11x11 matrix serves 44 numbers; 100 codes need 3 matrices.
    bank.generateBipolar(std::vector<double>(100, 0.1), 64);
    EXPECT_EQ(bank.matricesUsed(), 3);
}

TEST(StreamMatrix, FillAndReadBack)
{
    StreamMatrix m(4, 1000);
    Xoshiro256StarStar rng(8);
    m.fillBipolar(0, 0.5, 10, rng);
    m.fillBipolar(1, -0.5, 10, rng);
    m.fillNeutral(2);
    EXPECT_NEAR(m.bipolarValue(0), 0.5, 0.1);
    EXPECT_NEAR(m.bipolarValue(1), -0.5, 0.1);
    EXPECT_DOUBLE_EQ(m.bipolarValue(2), 0.0);
    EXPECT_EQ(m.countOnes(3), 0u);
}

TEST(StreamMatrix, ToBitstreamPreservesBits)
{
    StreamMatrix m(1, 130);
    Xoshiro256StarStar rng(9);
    m.fillBipolar(0, 0.2, 10, rng);
    const Bitstream s = m.toBitstream(0);
    EXPECT_EQ(s.size(), 130u);
    EXPECT_EQ(s.countOnes(), m.countOnes(0));
}

TEST(StreamMatrix, NeutralTailClean)
{
    StreamMatrix m(1, 70);
    m.fillNeutral(0);
    EXPECT_EQ(m.row(0)[1] >> 6, 0u);
    EXPECT_DOUBLE_EQ(m.bipolarValue(0), 0.0);
}

// Bits past streamLen() must stay zero after any fill: the engine's
// word-parallel kernels (ColumnCounts, majority folds, countOnes)
// popcount whole words, so a dirty tail would silently corrupt counts.

TEST(StreamMatrix, FillBipolarTailCleanAcrossLengths)
{
    for (const std::size_t len : {1u, 63u, 64u, 65u, 70u, 127u, 130u}) {
        StreamMatrix m(2, len);
        Xoshiro256StarStar rng(41);
        // Value 1.0 sets every in-range bit, so any stray tail bit is
        // detectable both by mask and by exact popcount.
        m.fillBipolar(0, 1.0, 10, rng);
        m.fillBipolar(1, 0.3, 10, rng);
        for (std::size_t r = 0; r < 2; ++r) {
            const std::size_t used = len % 64;
            if (used != 0) {
                EXPECT_EQ(m.row(r)[m.wordsPerRow() - 1] >> used, 0u)
                    << "len=" << len << " row=" << r;
            }
        }
        EXPECT_EQ(m.countOnes(0), len) << "len=" << len;
        EXPECT_LE(m.countOnes(1), len) << "len=" << len;
    }
}

TEST(StreamMatrix, FillNeutralTailCleanAcrossLengths)
{
    for (const std::size_t len : {1u, 63u, 64u, 65u, 70u, 127u, 130u}) {
        StreamMatrix m(1, len);
        m.fillNeutral(0);
        const std::size_t used = len % 64;
        if (used != 0) {
            EXPECT_EQ(m.row(0)[m.wordsPerRow() - 1] >> used, 0u)
                << "len=" << len;
        }
        // Neutral is 0101...: exactly floor(len / 2) ones (bit 0 is 0).
        EXPECT_EQ(m.countOnes(0), len / 2) << "len=" << len;
    }
}

TEST(StreamMatrix, RefillKeepsTailClean)
{
    // Re-filling a row that previously held ones must not leave stale
    // tail bits behind.
    StreamMatrix m(1, 70);
    Xoshiro256StarStar rng(43);
    m.fillBipolar(0, 1.0, 10, rng);
    m.fillNeutral(0);
    EXPECT_EQ(m.row(0)[1] >> 6, 0u);
    m.fillBipolar(0, -1.0, 10, rng);
    EXPECT_EQ(m.countOnes(0), 0u);
}

} // namespace
} // namespace aqfpsc::sc
