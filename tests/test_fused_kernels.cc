/**
 * @file
 * Golden-equivalence suite for the fused zero-allocation inference
 * kernels.
 *
 * The fused paths (ColumnCounts::addXnor / drive / driveWithOvercount,
 * lazy clear, word-batched StreamMatrix::fillBipolar, the per-thread
 * StageWorkspace arena) must be bit-identical to the reference paths
 * they replaced (xnorProduct + addWords + extract + per-use feedback
 * units, bit-serial SNG fill, per-image allocation).  Coverage:
 *
 *  - kernel-level equivalence across random stream lengths (including
 *    non-multiple-of-64 tails) and odd/even stream counts;
 *  - an end-to-end golden dump (per-stage stream hashes + hexfloat
 *    scores) captured from the pre-fusion implementation for all three
 *    registered backends, two stream lengths, and the approximate-APC
 *    path — any bit drift in any stage of any backend fails the test;
 *  - workspace-reuse determinism (results independent of buffer reuse
 *    order) and a heap-allocation count proving the steady-state
 *    inference loop does not allocate inside the stage pipeline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cinttypes>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "blocks/feedback_unit.h"
#include "core/backend_registry.h"
#include "core/model_zoo.h"
#include "core/session.h"
#include "core/stages/stage.h"
#include "core/stages/stage_common.h"
#include "core/workspace.h"
#include "data/digits.h"
#include "sc/apc.h"
#include "sc/rng.h"
#include "sc/sng.h"
#include "sc/stream_matrix.h"

// ------------------------------------------------------------------------
// Global allocation counter: every operator new bumps it, so tests can
// assert that a code region performed no heap allocation.
// ------------------------------------------------------------------------

namespace {
std::atomic<std::size_t> g_allocations{0};
}

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace aqfpsc;

// ------------------------------------------------------------------------
// Helpers
// ------------------------------------------------------------------------

/** Random packed streams with clean tails, via the real SNG fill. */
sc::StreamMatrix
randomStreams(std::size_t rows, std::size_t len, std::uint64_t seed)
{
    sc::StreamMatrix m(rows, len);
    sc::Xoshiro256StarStar rng(seed);
    for (std::size_t r = 0; r < rows; ++r) {
        const double value =
            2.0 * static_cast<double>((r * 2654435761u) % 1000) / 1000.0 -
            1.0;
        m.fillBipolar(r, value, 10, rng);
    }
    return m;
}

/** The pre-fusion reference accumulation: XNOR buffer + addWords. */
void
referenceAccumulate(sc::ColumnCounts &counts, const sc::StreamMatrix &x,
                    const sc::StreamMatrix &w)
{
    const std::size_t wpr = x.wordsPerRow();
    std::vector<std::uint64_t> prod(wpr);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        core::stages::xnorProduct(prod.data(), x.row(r), w.row(r), wpr);
        counts.addWords(prod.data(), wpr);
    }
}

const std::size_t kLens[] = {1, 37, 64, 100, 128, 129, 1000};

// ------------------------------------------------------------------------
// Kernel-level equivalence
// ------------------------------------------------------------------------

TEST(FusedKernels, AddXnorMatchesReferenceAccumulation)
{
    for (const std::size_t len : kLens) {
        for (const std::size_t m : {1u, 2u, 5u, 8u}) {
            const sc::StreamMatrix x = randomStreams(m, len, 100 + len);
            const sc::StreamMatrix w = randomStreams(m, len, 200 + len);

            sc::ColumnCounts ref(len, static_cast<int>(m) + 1);
            referenceAccumulate(ref, x, w);

            sc::ColumnCounts fused(len, static_cast<int>(m) + 1);
            for (std::size_t r = 0; r < m; ++r)
                fused.addXnor(x.row(r), w.row(r), x.wordsPerRow());

            std::vector<int> col;
            ref.extract(col);
            ASSERT_EQ(col.size(), len);
            std::size_t visited = 0;
            fused.forEachCount([&](std::size_t i, int c) {
                ASSERT_LT(i, len);
                EXPECT_EQ(c, col[i]) << "len=" << len << " m=" << m
                                     << " cycle=" << i;
                ++visited;
            });
            EXPECT_EQ(visited, len);
            // Random-access reads agree too.
            for (std::size_t i = 0; i < len; i += 7)
                EXPECT_EQ(fused.count(i), col[i]);
        }
    }
}

TEST(FusedKernels, DriveMatchesExtractPlusFeedbackUnit)
{
    for (const std::size_t len : kLens) {
        for (const int m : {3, 4, 9, 12}) { // odd and even stream counts
            const sc::StreamMatrix x =
                randomStreams(static_cast<std::size_t>(m), len, 300 + len);
            const sc::StreamMatrix w =
                randomStreams(static_cast<std::size_t>(m), len, 400 + len);

            sc::ColumnCounts counts(len, m + 1);
            for (int r = 0; r < m; ++r)
                counts.addXnor(x.row(static_cast<std::size_t>(r)),
                               w.row(static_cast<std::size_t>(r)),
                               x.wordsPerRow());

            const int eff_m = m % 2 == 1 ? m : m + 1;

            // Reference: materialized counts + per-use unit + bit sets.
            std::vector<int> col;
            counts.extract(col);
            std::vector<std::uint64_t> ref(counts.wordCount(), 0);
            blocks::FeatureFeedbackUnit ref_unit(eff_m);
            for (std::size_t i = 0; i < len; ++i) {
                if (ref_unit.step(col[i]))
                    core::stages::setStreamBit(ref.data(), i);
            }

            // Fused: drive into a dirty buffer — full words (tail bits
            // included) must be rewritten.
            std::vector<std::uint64_t> got(counts.wordCount(),
                                           ~0ULL); // poison
            blocks::FeatureFeedbackUnit unit(1);
            unit.reset(eff_m);
            counts.drive([&](int c) { return unit.step(c); }, got.data());
            EXPECT_EQ(got, ref) << "len=" << len << " m=" << m;

            // Pooling unit flavour as well.
            blocks::PoolingFeedbackUnit ref_pool(m);
            std::vector<std::uint64_t> pref(counts.wordCount(), 0);
            for (std::size_t i = 0; i < len; ++i) {
                if (ref_pool.step(col[i]))
                    core::stages::setStreamBit(pref.data(), i);
            }
            blocks::PoolingFeedbackUnit pool(1);
            pool.reset(m);
            std::vector<std::uint64_t> pgot(counts.wordCount(), ~0ULL);
            counts.drive([&](int c) { return pool.step(c); }, pgot.data());
            EXPECT_EQ(pgot, pref) << "len=" << len << " m=" << m;
        }
    }
}

TEST(FusedKernels, DriveWithOvercountMatchesAddOvercount)
{
    for (const std::size_t len : {64u, 100u, 192u, 1000u}) {
        for (const int m : {4, 7, 10}) {
            const sc::StreamMatrix x =
                randomStreams(static_cast<std::size_t>(m), len, 500 + len);
            const sc::StreamMatrix w =
                randomStreams(static_cast<std::size_t>(m), len, 600 + len);
            const std::size_t wpr = x.wordsPerRow();

            // Reference: observe() materialized products, addOvercount().
            sc::ColumnCounts ref_counts(len, m + 1);
            core::stages::ApproxPairOvercount ref_over(len, m / 2 + 1);
            std::vector<std::uint64_t> prod(wpr);
            for (int r = 0; r < m; ++r) {
                core::stages::xnorProduct(
                    prod.data(), x.row(static_cast<std::size_t>(r)),
                    w.row(static_cast<std::size_t>(r)), wpr);
                ref_counts.addWords(prod.data(), wpr);
                ref_over.observe(prod, wpr);
            }
            std::vector<int> col;
            ref_counts.extract(col);
            ref_over.addOvercount(col, m);

            // Fused: observeXnor + driveWithOvercount.
            sc::ColumnCounts counts(len, m + 1);
            core::stages::ApproxPairOvercount over(len, m / 2 + 1);
            for (int r = 0; r < m; ++r) {
                counts.addXnor(x.row(static_cast<std::size_t>(r)),
                               w.row(static_cast<std::size_t>(r)), wpr);
                over.observeXnor(x.row(static_cast<std::size_t>(r)),
                                 w.row(static_cast<std::size_t>(r)), wpr);
            }
            std::vector<int> got;
            got.reserve(len);
            std::vector<std::uint64_t> dst(counts.wordCount());
            counts.driveWithOvercount(over.counts(), m,
                                      [&](int c) {
                                          got.push_back(c);
                                          return (c & 1) != 0;
                                      },
                                      dst.data());
            ASSERT_EQ(got.size(), len);
            for (std::size_t i = 0; i < len; ++i)
                EXPECT_EQ(got[i], col[i])
                    << "len=" << len << " m=" << m << " cycle=" << i;
        }
    }
}

TEST(FusedKernels, LazyClearBehavesLikeFreshCounter)
{
    const std::size_t len = 200; // non-multiple-of-64 tail
    sc::ColumnCounts reused(len, 16);
    // Cycle through accumulations of shrinking and growing sizes so the
    // dirty-plane high-water mark rises and falls.
    for (const int m : {15, 1, 7, 2, 15, 3}) {
        const sc::StreamMatrix x =
            randomStreams(static_cast<std::size_t>(m), len,
                          700 + static_cast<std::size_t>(m));
        const sc::StreamMatrix w =
            randomStreams(static_cast<std::size_t>(m), len,
                          800 + static_cast<std::size_t>(m));

        reused.clear();
        EXPECT_EQ(reused.added(), 0);
        sc::ColumnCounts fresh(len, 16);
        for (int r = 0; r < m; ++r) {
            reused.addXnor(x.row(static_cast<std::size_t>(r)),
                           w.row(static_cast<std::size_t>(r)),
                           x.wordsPerRow());
            fresh.addXnor(x.row(static_cast<std::size_t>(r)),
                          w.row(static_cast<std::size_t>(r)),
                          x.wordsPerRow());
        }
        std::vector<int> a, b;
        reused.extract(a);
        fresh.extract(b);
        EXPECT_EQ(a, b) << "m=" << m;
    }
}

TEST(FusedKernels, FillBipolarMatchesBitSerialReference)
{
    const double values[] = {-1.0, -0.5, 0.0, 0.3, 0.999, 1.0};
    for (const std::size_t len : kLens) {
        for (const int bits : {4, 10}) {
            // Both generators start from the same seed; the batched fill
            // must consume the RNG in exactly the bit-serial order.
            sc::Xoshiro256StarStar rng(42 + len);
            sc::Xoshiro256StarStar ref_rng(42 + len);
            sc::StreamMatrix m(std::size(values), len);
            for (std::size_t r = 0; r < std::size(values); ++r)
                m.fillBipolar(r, values[r], bits, rng);

            for (std::size_t r = 0; r < std::size(values); ++r) {
                const std::uint32_t code =
                    sc::quantizeBipolar(values[r], bits);
                for (std::size_t w = 0; w < m.wordsPerRow(); ++w) {
                    std::uint64_t word = 0;
                    const std::size_t hi =
                        len - w * 64 < 64 ? len - w * 64 : 64;
                    for (std::size_t b = 0; b < hi; ++b) {
                        if (ref_rng.nextBits(bits) < code)
                            word |= 1ULL << b;
                    }
                    EXPECT_EQ(m.row(r)[w], word)
                        << "len=" << len << " bits=" << bits
                        << " value=" << values[r] << " word=" << w;
                }
            }
            // The two generators must leave in identical states (the
            // batched fill drew exactly len words per row).
            EXPECT_EQ(rng.nextWord(), ref_rng.nextWord());
        }
    }
}

TEST(FusedKernels, FeedbackUnitResetRearmsLikeConstruction)
{
    sc::Xoshiro256StarStar rng(9);
    blocks::FeatureFeedbackUnit reused(1);
    blocks::PoolingFeedbackUnit pool_reused(1);
    for (const int m : {1, 3, 9, 25, 9, 3}) {
        blocks::FeatureFeedbackUnit fresh(m);
        reused.reset(m);
        EXPECT_EQ(reused.m(), fresh.m());
        EXPECT_EQ(reused.carry(), fresh.carry());
        blocks::PoolingFeedbackUnit pool_fresh(m);
        pool_reused.reset(m);
        for (int i = 0; i < 200; ++i) {
            const int c = static_cast<int>(rng.nextBits(16)) % (m + 1);
            EXPECT_EQ(reused.step(c), fresh.step(c));
            EXPECT_EQ(pool_reused.step(c), pool_fresh.step(c));
        }
        EXPECT_EQ(reused.carry(), fresh.carry());
        EXPECT_EQ(pool_reused.carry(), pool_fresh.carry());
    }
}

// ------------------------------------------------------------------------
// End-to-end golden equivalence
// ------------------------------------------------------------------------

std::uint64_t
fnv1a(std::uint64_t h, const std::uint64_t *words, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t w = words[i];
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xFF;
            h *= 0x100000001B3ULL;
        }
    }
    return h;
}

std::uint64_t
hashMatrix(const sc::StreamMatrix &m)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (std::size_t r = 0; r < m.rows(); ++r)
        h = fnv1a(h, m.row(r), m.wordsPerRow());
    return h;
}

/**
 * Walk one engine configuration stage by stage, recording a hash of
 * every intermediate stream matrix and the final hexfloat scores.  This
 * is exactly the procedure that produced kGoldenDump on the pre-fusion
 * implementation (PR 2's per-pixel reference kernels).
 */
std::string
dumpConfig(const std::string &backend, std::size_t len, std::uint64_t seed,
           bool approx, const std::vector<nn::Sample> &samples)
{
    core::EngineOptions opts;
    opts.backend = backend;
    opts.streamLen = len;
    opts.seed = seed;
    opts.approximateApc = approx;
    core::InferenceSession session(core::buildModel("tiny", 3), opts);
    const core::ScNetworkEngine &engine = session.engine();
    const bool streams =
        core::BackendRegistry::instance().traits(backend).wantsInputStreams;

    std::string out;
    char buf[256];
    for (std::size_t idx = 0; idx < samples.size(); ++idx) {
        const nn::Tensor &image = samples[idx].image;
        core::StageContext ctx;
        ctx.imageSeed = sc::deriveStreamSeed(seed, idx);
        ctx.image = &image;
        sc::StreamMatrix cur;
        if (streams) {
            cur = sc::StreamMatrix(image.size(), len);
            sc::Xoshiro256StarStar rng(ctx.imageSeed ^ 0xABCDEF12345ULL);
            for (std::size_t i = 0; i < image.size(); ++i)
                cur.fillBipolar(i, image[i], opts.rngBits, rng);
        }
        std::snprintf(buf, sizeof(buf), "%s len=%zu seed=%" PRIu64
                      " approx=%d img=%zu in=%016" PRIx64 "\n",
                      backend.c_str(), len, seed, approx ? 1 : 0, idx,
                      hashMatrix(cur));
        out += buf;
        for (std::size_t s = 0; s < engine.stageCount(); ++s) {
            const core::ScStage &stage = engine.stage(s);
            const std::unique_ptr<core::StageScratch> scratch =
                stage.makeScratch();
            sc::StreamMatrix next;
            stage.runInto(cur, next, ctx, scratch.get());
            if (stage.terminal())
                break;
            cur = std::move(next);
            std::snprintf(buf, sizeof(buf), "  stage%zu=%016" PRIx64 "\n", s,
                          hashMatrix(cur));
            out += buf;
        }
        out += "  scores";
        for (double v : ctx.scores) {
            std::snprintf(buf, sizeof(buf), " %a", v);
            out += buf;
        }
        out += "\n";
        // Cross-check: the workspace-based inferIndexed path agrees with
        // the stage-by-stage walk.
        const core::ScPrediction p = engine.inferIndexed(image, idx);
        std::snprintf(buf, sizeof(buf), "  label=%d\n", p.label);
        out += buf;
    }
    return out;
}

/** Captured from the pre-fusion implementation (seed of this PR). */
const char *const kGoldenDump =
    R"(aqfp-sorter len=192 seed=7 approx=0 img=0 in=463d3e84a8f3ce15
  stage0=f9eade94e33a8709
  stage1=d4183d600a0a2353
  stage2=0e0d9fef23b0d0e7
  stage3=0ac2aa9bddb55f0d
  scores -0x1.9555555555554p-3 -0x1.9555555555554p-3 -0x1.aaaaaaaaaaabp-5 -0x1.aaaaaaaaaaabp-5 0x1.aaaaaaaaaaaap-5 0x1.8p-4 -0x1.aaaaaaaaaaabp-5 0x1.aaaaaaaaaaaa8p-3 0x1.eaaaaaaaaaaa8p-3 0x1.8p-4
  label=8
aqfp-sorter len=192 seed=7 approx=0 img=1 in=ae495ece0feac99e
  stage0=52ee7e46b093346c
  stage1=b530dfba1f12c594
  stage2=0a4da2cc15462332
  stage3=1855ab13fdaf6767
  scores 0x1p-5 -0x1.aaaaaaaaaaabp-5 0x1.0aaaaaaaaaaacp-2 0x1.2aaaaaaaaaaa8p-3 -0x1.aaaaaaaaaaaa8p-4 -0x1.555555555554p-7 -0x1.2aaaaaaaaaaacp-3 0x1.1555555555558p-3 0x1.aaaaaaaaaaaap-5 -0x1p-4
  label=2
aqfp-sorter len=192 seed=7 approx=0 img=2 in=9ac1c47a1daf360f
  stage0=ec72e72cf3e63d15
  stage1=13e0f6fc4a756c78
  stage2=a354c0bba2ea7603
  stage3=4355e9c7e5ced147
  scores 0x0p+0 -0x1.5555555555554p-3 -0x1.aaaaaaaaaaaa8p-4 -0x1.5555555555554p-3 -0x1.555555555554p-7 0x1p-4 0x1p-2 0x1.9555555555558p-3 0x1.4p-2 0x1.555555555555p-4
  label=8
aqfp-sorter len=100 seed=11 approx=0 img=0 in=56e81286bb730f62
  stage0=0f05560263c226ad
  stage1=8f05c316be515ec0
  stage2=31181e994632f66c
  stage3=e51d64af6b7ef0e6
  scores 0x1.1eb851eb851e8p-3 0x1.c28f5c28f5c28p-3 -0x1.c28f5c28f5c28p-3 -0x1.eb851eb851ecp-5 0x1.5c28f5c28f5c4p-2 0x1.1eb851eb851e8p-3 0x1.eb851eb851ecp-5 -0x1.47ae147ae1478p-4 -0x1.70a3d70a3d70cp-3 0x1.47ae147ae148p-4
  label=4
aqfp-sorter len=100 seed=11 approx=0 img=1 in=276f0a51f2c09109
  stage0=e3eb41f2d5cd45ad
  stage1=ae4c0c7f9b8f349f
  stage2=643c5ad67790e33d
  stage3=b3a0ad9dd294952a
  scores -0x1.47ae147ae148p-6 0x1.1eb851eb851ecp-2 -0x1.47ae147ae1478p-4 0x1.47ae147ae1478p-3 -0x1.47ae147ae1478p-4 0x1.9999999999998p-3 -0x1.47ae147ae1478p-4 -0x1.9999999999998p-4 -0x1.851eb851eb852p-2 0x1.eb851eb851ecp-5
  label=1
aqfp-sorter len=100 seed=11 approx=0 img=2 in=c6c21909957da863
  stage0=78521c0cd895e526
  stage1=767a7fbad34b3bde
  stage2=0a130e8c18c1a8d3
  stage3=55fa32d6e929a570
  scores 0x0p+0 0x1.47ae147ae148p-4 -0x1.47ae147ae147ap-2 0x0p+0 0x1.9999999999998p-3 0x1.9999999999998p-3 0x1.47ae147ae1478p-3 0x1.47ae147ae148p-4 -0x1.47ae147ae1478p-4 0x1.47ae147ae147cp-2
  label=9
cmos-apc len=192 seed=7 approx=0 img=0 in=463d3e84a8f3ce15
  stage0=f90ac267b7d757b4
  stage1=e6337de366c4c912
  stage2=35c106eeef97e9c1
  stage3=859a78d0b73bdd3b
  scores 0x1.8e5p+12 0x1.993p+12 0x1.84dp+12 0x1.898p+12 0x1.8d4p+12 0x1.872p+12 0x1.852p+12 0x1.782p+12 0x1.81cp+12 0x1.7c4p+12
  label=1
cmos-apc len=192 seed=7 approx=0 img=1 in=ae495ece0feac99e
  stage0=5753dd22f8c070a8
  stage1=30a78dacd9618699
  stage2=b7eaf545113e889f
  stage3=cc166ae042c17f91
  scores 0x1.96ap+12 0x1.8aep+12 0x1.96ap+12 0x1.813p+12 0x1.811p+12 0x1.8c1p+12 0x1.885p+12 0x1.90fp+12 0x1.813p+12 0x1.86fp+12
  label=0
cmos-apc len=192 seed=7 approx=0 img=2 in=9ac1c47a1daf360f
  stage0=86af4de12db38498
  stage1=a92cf5c9d5a2f97e
  stage2=d8efb90e93d7e6c2
  stage3=bebb4f9fc7885141
  scores 0x1.8d7p+12 0x1.97fp+12 0x1.7cdp+12 0x1.87cp+12 0x1.8bp+12 0x1.8fp+12 0x1.8f6p+12 0x1.7e4p+12 0x1.8ep+12 0x1.946p+12
  label=1
cmos-apc len=100 seed=11 approx=0 img=0 in=56e81286bb730f62
  stage0=48cd4e004ab92264
  stage1=1a442d195c64a110
  stage2=c6ba26b741f40ba5
  stage3=60d4e70ba31e4062
  scores 0x1.8ap+11 0x1.988p+11 0x1.afp+11 0x1.9c8p+11 0x1.9ccp+11 0x1.946p+11 0x1.906p+11 0x1.97p+11 0x1.8d2p+11 0x1.9aap+11
  label=2
cmos-apc len=100 seed=11 approx=0 img=1 in=276f0a51f2c09109
  stage0=bfdf6dc0d4f889ea
  stage1=3dc74ba8f7d4628d
  stage2=8f8972ccf4b850c6
  stage3=81b679f496df2536
  scores 0x1.94ap+11 0x1.85ep+11 0x1.aa2p+11 0x1.90ep+11 0x1.a16p+11 0x1.97cp+11 0x1.a18p+11 0x1.922p+11 0x1.958p+11 0x1.9dcp+11
  label=2
cmos-apc len=100 seed=11 approx=0 img=2 in=c6c21909957da863
  stage0=831b12e89a2673ce
  stage1=df44521905be0357
  stage2=e17817f45a4c5012
  stage3=c185e1ef559a606c
  scores 0x1.9a8p+11 0x1.844p+11 0x1.a5cp+11 0x1.ab4p+11 0x1.974p+11 0x1.9bap+11 0x1.8aap+11 0x1.8b4p+11 0x1.986p+11 0x1.836p+11
  label=3
cmos-apc len=192 seed=7 approx=1 img=0 in=463d3e84a8f3ce15
  stage0=b7378d77bf964665
  stage1=fe8a03ff0e87a990
  stage2=7e16f1a4319de2b0
  stage3=bece4cbaf1245125
  scores 0x1.7f3p+12 0x1.685p+12 0x1.9bdp+12 0x1.88p+12 0x1.844p+12 0x1.a2ep+12 0x1.6fcp+12 0x1.728p+12 0x1.896p+12 0x1.776p+12
  label=5
cmos-apc len=192 seed=7 approx=1 img=1 in=ae495ece0feac99e
  stage0=c99b01de67fd6339
  stage1=33825f65cb658071
  stage2=ef3026c62bc0cf22
  stage3=aef6a02224cd0824
  scores 0x1.7f2p+12 0x1.684p+12 0x1.9bcp+12 0x1.87fp+12 0x1.843p+12 0x1.a2fp+12 0x1.6fdp+12 0x1.729p+12 0x1.895p+12 0x1.777p+12
  label=5
cmos-apc len=192 seed=7 approx=1 img=2 in=9ac1c47a1daf360f
  stage0=fbec7dd4603fcf14
  stage1=aa186a8b806a82de
  stage2=2d8fea5a97fac500
  stage3=bece4cbaf1245125
  scores 0x1.7f3p+12 0x1.685p+12 0x1.9bdp+12 0x1.88p+12 0x1.844p+12 0x1.a2ep+12 0x1.6fcp+12 0x1.728p+12 0x1.896p+12 0x1.776p+12
  label=5
float-ref len=192 seed=7 approx=0 img=0 in=cbf29ce484222325
  stage0=cbf29ce484222325
  stage1=cbf29ce484222325
  stage2=cbf29ce484222325
  stage3=cbf29ce484222325
  scores 0x1.0cb1fp-4 -0x1.b2ed68p-4 0x1.21466ap-6 -0x1.067f1p-4 0x1.c55b9p-5 0x1.4b0e8cp-3 0x1.6a4c7p-3 0x1.78df2p-4 0x1.56127p-3 0x1.4b76ap-4
  label=6
float-ref len=192 seed=7 approx=0 img=1 in=cbf29ce484222325
  stage0=cbf29ce484222325
  stage1=cbf29ce484222325
  stage2=cbf29ce484222325
  stage3=cbf29ce484222325
  scores -0x1.9da88p-3 -0x1.85827ap-3 0x1.45e348p-4 0x1.64c7c2p-5 -0x1.088f3ep-3 -0x1.029ab4p-5 -0x1.9a9b4cp-4 0x1.0d7638p-2 0x1.7f5654p-4 0x1.58b668p-5
  label=7
float-ref len=192 seed=7 approx=0 img=2 in=cbf29ce484222325
  stage0=cbf29ce484222325
  stage1=cbf29ce484222325
  stage2=cbf29ce484222325
  stage3=cbf29ce484222325
  scores -0x1.adc9a2p-6 -0x1.5337dap-3 -0x1.80a238p-9 -0x1.c1e9fcp-6 0x1.64b7p-11 0x1.bea8ep-3 0x1.7c5ed6p-3 0x1.08dfaap-3 0x1.ad9084p-3 0x1.f0d4f4p-4
  label=5
)";

TEST(FusedKernels, GoldenEndToEndBitExactAcrossBackends)
{
    const std::vector<nn::Sample> samples = data::generateDigits(3, 42);
    std::string all;
    all += dumpConfig("aqfp-sorter", 192, 7, false, samples);
    all += dumpConfig("aqfp-sorter", 100, 11, false, samples);
    all += dumpConfig("cmos-apc", 192, 7, false, samples);
    all += dumpConfig("cmos-apc", 100, 11, false, samples);
    all += dumpConfig("cmos-apc", 192, 7, true, samples);
    all += dumpConfig("float-ref", 192, 7, false, samples);
    EXPECT_EQ(all, kGoldenDump)
        << "fused kernels drifted from the pre-fusion reference";
}

// ------------------------------------------------------------------------
// Workspace behaviour
// ------------------------------------------------------------------------

TEST(StageWorkspace, ReuseIsBitIdentical)
{
    const std::vector<nn::Sample> samples = data::generateDigits(3, 42);
    core::ScEngineConfig cfg;
    cfg.backendName = "aqfp-sorter";
    cfg.streamLen = 96;
    cfg.seed = 5;
    const core::ScNetworkEngine engine(core::buildModel("tiny", 2), cfg);

    // Transient-workspace results are the reference.
    std::vector<core::ScPrediction> ref;
    for (std::size_t i = 0; i < samples.size(); ++i)
        ref.push_back(engine.inferIndexed(samples[i].image, i));

    // One reused workspace, images visited twice in scrambled order:
    // stale buffer contents must never leak into results.
    core::StageWorkspace ws(engine);
    for (const std::size_t i : {2u, 0u, 1u, 0u, 2u, 1u}) {
        const core::ScPrediction p =
            engine.inferIndexed(samples[i].image, i, ws);
        EXPECT_EQ(p.label, ref[i].label) << "img=" << i;
        EXPECT_EQ(p.scores, ref[i].scores) << "img=" << i;
    }
}

TEST(StageWorkspace, SteadyStateInferenceDoesNotAllocate)
{
    const std::vector<nn::Sample> samples = data::generateDigits(2, 7);
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        core::ScEngineConfig cfg;
        cfg.backendName = backend;
        cfg.streamLen = 64;
        const core::ScNetworkEngine engine(core::buildModel("tiny", 2),
                                           cfg);
        core::StageWorkspace ws(engine);
        // Warm to high-water: buffers, scratch and context reach their
        // steady-state sizes.
        engine.inferIndexed(samples[0].image, 0, ws);
        engine.inferIndexed(samples[1].image, 1, ws);

        const std::size_t before =
            g_allocations.load(std::memory_order_relaxed);
        const core::ScPrediction p =
            engine.inferIndexed(samples[0].image, 2, ws);
        const std::size_t after =
            g_allocations.load(std::memory_order_relaxed);

        // The stage pipeline itself must not allocate; the only heap
        // traffic allowed is the returned prediction's score vector.
        EXPECT_LE(after - before, 2u) << backend;
        EXPECT_EQ(p.scores.size(), 10u);
    }
}

} // namespace
