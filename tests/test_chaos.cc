/**
 * @file
 * Chaos suite for the serving stack's failure model: deterministic
 * fault injection, structured Status propagation, per-request timeouts
 * with cooperative cancellation, bounded retry/quarantine, watchdog
 * crash-respawn and hang-kick, and a multi-round overload fuzz that
 * asserts the hard invariants — no future is ever lost or fulfilled
 * twice, every failure carries a taxonomy code, and every success
 * replays bit-identically through the engine's synchronous entry
 * points.  Run under ASan/UBSan in CI, in both SIMD dispatch modes.
 *
 * Every test arms a ScopedFaultPlan with a fixed seed, so a failing
 * round reproduces exactly by rerunning the binary: fire decisions are
 * a pure hash of (seed, site, key), independent of thread timing.
 */

#include <chrono>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/fault_injection.h"
#include "core/model_zoo.h"
#include "core/session.h"
#include "core/status.h"
#include "data/digits.h"
#include "serving/frontend.h"

namespace aqfpsc::serving {
namespace {

using core::FaultPlan;
using core::FaultSite;
using core::ScopedFaultPlan;
using core::Status;
using core::StatusCode;
using core::StatusError;

std::vector<nn::Sample>
testImages(int n)
{
    return data::generateDigits(n, 77);
}

core::EngineOptions
engineOpts(std::size_t stream_len = 128)
{
    core::EngineOptions opts;
    opts.streamLen = stream_len;
    return opts;
}

void
addTinyModel(ServingFrontend &fe, std::size_t stream_len = 128)
{
    fe.addModel("m", core::buildTinyCnn(3), engineOpts(stream_len));
}

TenantConfig
tenant(const std::string &name)
{
    TenantConfig cfg;
    cfg.name = name;
    cfg.model = "m";
    return cfg;
}

/** A watchdog fast enough for test-scale supervision assertions. */
FrontendOptions
supervisedOpts(int workers)
{
    FrontendOptions opts;
    opts.workers = workers;
    opts.watchdogSeconds = 0.01;
    opts.stallSeconds = 0.03;
    return opts;
}

// ---------------------------------------------------------------------
// The injection framework itself.

TEST(FaultInjection, DecisionsAreDeterministicInSeedSiteKey)
{
    FaultPlan a(42);
    FaultPlan b(42);
    FaultPlan c(43);
    a.arm(FaultSite::WorkerException, 0.3);
    b.arm(FaultSite::WorkerException, 0.3);
    c.arm(FaultSite::WorkerException, 0.3);
    std::size_t fires = 0;
    std::size_t disagrees = 0;
    for (std::uint64_t key = 0; key < 2000; ++key) {
        const bool fa = a.decides(FaultSite::WorkerException, key);
        EXPECT_EQ(fa, b.decides(FaultSite::WorkerException, key));
        fires += fa ? 1u : 0u;
        disagrees +=
            fa != c.decides(FaultSite::WorkerException, key) ? 1u : 0u;
    }
    // ~30% fire rate, and a different seed draws a different pattern.
    EXPECT_GT(fires, 400u);
    EXPECT_LT(fires, 800u);
    EXPECT_GT(disagrees, 0u);
}

TEST(FaultInjection, ProbabilityEndpointsAndMaxFires)
{
    FaultPlan plan(7);
    plan.arm(FaultSite::WorkerException, 1.0);
    plan.arm(FaultSite::WorkerCrash, 0.0);
    plan.arm(FaultSite::EngineCompile, 1.0, std::chrono::milliseconds{0},
             2);
    for (std::uint64_t key = 0; key < 64; ++key) {
        EXPECT_TRUE(plan.decides(FaultSite::WorkerException, key));
        EXPECT_FALSE(plan.decides(FaultSite::WorkerCrash, key));
    }
    // maxFires caps the counted tryFire path, not the pure decision.
    EXPECT_TRUE(plan.tryFire(FaultSite::EngineCompile, 1));
    EXPECT_TRUE(plan.tryFire(FaultSite::EngineCompile, 2));
    EXPECT_FALSE(plan.tryFire(FaultSite::EngineCompile, 3));
    EXPECT_EQ(plan.fired(FaultSite::EngineCompile), 2u);
}

TEST(FaultInjection, ScopedPlanInstallsAndDisarms)
{
    EXPECT_EQ(core::fault::activePlan(), nullptr);
    EXPECT_FALSE(core::fault::shouldFire(FaultSite::WorkerException, 0));
    {
        FaultPlan plan(1);
        plan.arm(FaultSite::WorkerException, 1.0);
        ScopedFaultPlan scope(plan);
        EXPECT_EQ(core::fault::activePlan(), &plan);
        EXPECT_TRUE(
            core::fault::shouldFire(FaultSite::WorkerException, 0));
    }
    EXPECT_EQ(core::fault::activePlan(), nullptr);
    EXPECT_FALSE(core::fault::shouldFire(FaultSite::WorkerException, 0));
}

TEST(FaultInjection, EngineCompileFailureSurfacesAsStatusError)
{
    FaultPlan plan(5);
    plan.arm(FaultSite::EngineCompile, 1.0);
    ScopedFaultPlan scope(plan);
    const core::InferenceSession session(core::buildTinyCnn(3),
                                         engineOpts());
    try {
        session.engine();
        FAIL() << "engine compile should have failed by injection";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code, StatusCode::EngineCompileFailed);
    }
}

// ---------------------------------------------------------------------
// Retry, quarantine, timeout.

TEST(ChaosRetry, PoisonRequestsQuarantineAfterRetryBudget)
{
    FaultPlan plan(9);
    // Every serve attempt throws: chunk and per-request isolation both.
    plan.arm(FaultSite::WorkerException, 1.0);
    ScopedFaultPlan scope(plan);

    ServingFrontend fe(supervisedOpts(2));
    addTinyModel(fe);
    TenantConfig cfg = tenant("t");
    cfg.maxRetries = 2;
    cfg.retryBackoffSeconds = 0.001;
    fe.addTenant(cfg);
    fe.start();

    const auto samples = testImages(6);
    std::vector<std::future<ServedResult>> futures;
    for (const auto &s : samples)
        futures.push_back(fe.submit("t", s.image));
    std::size_t quarantined = 0;
    for (auto &f : futures) {
        try {
            f.get();
            ADD_FAILURE() << "expected every request to fail";
        } catch (const StatusError &e) {
            EXPECT_EQ(e.status().code, StatusCode::Quarantined);
            ++quarantined;
        }
    }
    fe.shutdown();
    EXPECT_EQ(quarantined, samples.size());

    const TenantStats stats = fe.tenantStats("t");
    EXPECT_EQ(stats.submitted, samples.size());
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_EQ(stats.failed, samples.size());
    EXPECT_EQ(stats.quarantined, samples.size());
    // maxRetries extra attempts per request, every one retried.
    EXPECT_EQ(stats.retried, 2 * samples.size());
    const HealthSnapshot health = fe.health();
    EXPECT_EQ(health.quarantined, samples.size());
    EXPECT_EQ(health.failed, samples.size());
}

TEST(ChaosRetry, TransientFaultsAreRetriedToSuccess)
{
    FaultPlan plan(13);
    // The first two chunk dispatches throw, then the site goes quiet:
    // the isolation rerun / retry path must finish every request.
    plan.arm(FaultSite::WorkerException, 1.0,
             std::chrono::milliseconds{0}, 2);
    ScopedFaultPlan scope(plan);

    ServingFrontend fe(supervisedOpts(1));
    addTinyModel(fe);
    TenantConfig cfg = tenant("t");
    cfg.maxRetries = 3;
    cfg.retryBackoffSeconds = 0.001;
    fe.addTenant(cfg);
    fe.start();

    const auto samples = testImages(8);
    std::vector<std::future<ServedResult>> futures;
    for (const auto &s : samples)
        futures.push_back(fe.submit("t", s.image));
    for (auto &f : futures)
        EXPECT_EQ(f.get().prediction.scores.size(), 10u);
    fe.shutdown();
    const TenantStats stats = fe.tenantStats("t");
    EXPECT_EQ(stats.completed, samples.size());
    EXPECT_EQ(stats.failed, 0u);
}

TEST(ChaosTimeout, SlowdownTripsPerRequestTimeout)
{
    FaultPlan plan(21);
    // One injected 300 ms stall against a 40 ms budget.  The default
    // stallSeconds (1 s) keeps the watchdog out of the way: the stalled
    // run must be cancelled by its own deadline, mid-run, not kicked.
    plan.arm(FaultSite::WorkerSlowdown, 1.0,
             std::chrono::milliseconds{300}, 1);
    ScopedFaultPlan scope(plan);

    FrontendOptions opts;
    opts.workers = 1;
    ServingFrontend fe(opts);
    addTinyModel(fe);
    TenantConfig cfg = tenant("t");
    cfg.timeoutSeconds = 0.04;
    fe.addTenant(cfg);
    fe.start();

    const auto samples = testImages(6);
    std::vector<std::future<ServedResult>> futures;
    futures.push_back(fe.submit("t", samples[0].image));
    std::size_t completed = 0;
    std::size_t timed_out = 0;
    try {
        futures[0].get();
        ++completed;
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code, StatusCode::Timeout);
        ++timed_out;
    }
    EXPECT_EQ(timed_out, 1u) << "the 40 ms budget must cancel the "
                                "stalled run mid-slowdown";

    // The slowdown is spent (maxFires = 1): later requests run clean
    // and complete inside the same budget.
    for (std::size_t i = 1; i < samples.size(); ++i)
        futures.push_back(fe.submit("t", samples[i].image));
    for (std::size_t i = 1; i < futures.size(); ++i) {
        try {
            futures[i].get();
            ++completed;
        } catch (const StatusError &e) {
            EXPECT_EQ(e.status().code, StatusCode::Timeout);
            ++timed_out;
        }
    }
    fe.shutdown();
    EXPECT_GE(completed, 1u);
    EXPECT_EQ(completed + timed_out, samples.size());
    const TenantStats stats = fe.tenantStats("t");
    EXPECT_EQ(stats.timedOut, timed_out);
    EXPECT_EQ(stats.completed + stats.failed, samples.size());
}

// ---------------------------------------------------------------------
// Worker supervision.

TEST(ChaosSupervision, CrashedWorkerIsRespawnedAndBatchRetried)
{
    FaultPlan plan(31);
    // The first popped batch kills its worker thread outright.
    plan.arm(FaultSite::WorkerCrash, 1.0, std::chrono::milliseconds{0},
             1);
    ScopedFaultPlan scope(plan);

    ServingFrontend fe(supervisedOpts(1));
    addTinyModel(fe);
    TenantConfig cfg = tenant("t");
    cfg.maxRetries = 2;
    cfg.retryBackoffSeconds = 0.001;
    fe.addTenant(cfg);
    fe.start();

    const auto samples = testImages(6);
    std::vector<std::future<ServedResult>> futures;
    for (const auto &s : samples)
        futures.push_back(fe.submit("t", s.image));
    for (auto &f : futures) {
        const ServedResult r = f.get();
        EXPECT_EQ(r.prediction.scores.size(), 10u);
    }
    const HealthSnapshot health = fe.health();
    fe.shutdown();
    EXPECT_GE(health.respawns, 1u);
    EXPECT_EQ(health.workersAlive, 1);
    const TenantStats stats = fe.tenantStats("t");
    EXPECT_EQ(stats.completed, samples.size());
    EXPECT_GE(stats.retried, 1u);
}

TEST(ChaosSupervision, WedgedWorkerIsKickedByTheWatchdog)
{
    FaultPlan plan(37);
    // A 10 s hang against a 30 ms stall threshold: without the kick
    // this test cannot finish in time; with it, the hang aborts at its
    // next 1 ms slice and the batch recovers per-request.
    plan.arm(FaultSite::WorkerHang, 1.0, std::chrono::milliseconds{10000},
             1);
    ScopedFaultPlan scope(plan);

    ServingFrontend fe(supervisedOpts(1));
    addTinyModel(fe);
    fe.addTenant(tenant("t"));
    fe.start();

    const auto samples = testImages(4);
    const auto begin = std::chrono::steady_clock::now();
    std::vector<std::future<ServedResult>> futures;
    for (const auto &s : samples)
        futures.push_back(fe.submit("t", s.image));
    for (auto &f : futures)
        EXPECT_EQ(f.get().prediction.scores.size(), 10u);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin)
            .count();
    const HealthSnapshot health = fe.health();
    fe.shutdown();
    EXPECT_GE(health.watchdogKicks, 1u);
    EXPECT_LT(elapsed, 5.0) << "the kick must preempt the 10 s hang";
    EXPECT_EQ(fe.tenantStats("t").completed, samples.size());
}

// ---------------------------------------------------------------------
// The multi-round overload fuzz.

TEST(ChaosFuzz, OverloadWithFaultsLosesNothingAndReplaysBitIdentically)
{
    const auto samples = testImages(30);

    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
        FaultPlan plan(seed);
        plan.arm(FaultSite::WorkerException, 0.08);
        plan.arm(FaultSite::WorkerCrash, 0.03);
        plan.arm(FaultSite::WorkerSlowdown, 0.10,
                 std::chrono::milliseconds{3});
        plan.arm(FaultSite::WorkerHang, 0.01,
                 std::chrono::milliseconds{2000});
        ScopedFaultPlan scope(plan);

        FrontendOptions opts = supervisedOpts(2);
        opts.maxBatch = 4;
        opts.policy = SchedPolicy::WeightedFair;
        opts.stallSeconds = 0.05;
        ServingFrontend fe(opts);
        addTinyModel(fe);

        TenantConfig gold = tenant("gold");
        gold.weight = 3.0;
        gold.queueCapacity = 16;
        gold.adaptive = true;
        gold.policy.checkpointCycles = 64;
        gold.policy.exitMargin = 0.10;
        gold.policy.minCycles = 64;
        gold.deadlineSeconds = 0.2;
        gold.shed.enabled = true;
        gold.shed.marginFloor = 0.02;
        gold.shed.minCyclesFloor = 64;
        gold.maxRetries = 2;
        gold.retryBackoffSeconds = 0.001;
        fe.addTenant(gold);

        TenantConfig bulk = tenant("bulk");
        bulk.queueCapacity = 16;
        bulk.timeoutSeconds = 0.5;
        bulk.maxRetries = 1;
        bulk.retryBackoffSeconds = 0.001;
        fe.addTenant(bulk);
        fe.start();

        // Overload: ~1.5x the combined queue capacity per burst wave,
        // admission-controlled through trySubmit.
        struct Pending
        {
            std::string tenant;
            const nn::Tensor *image;
            std::future<ServedResult> future;
        };
        std::vector<Pending> pending;
        std::size_t rejected = 0;
        for (int wave = 0; wave < 3; ++wave) {
            for (std::size_t i = 0; i < 48; ++i) {
                const std::string name = i % 2 ? "bulk" : "gold";
                const nn::Tensor &image = samples[i % samples.size()].image;
                auto f = fe.trySubmit(name, image);
                if (f)
                    pending.push_back({name, &image, std::move(*f)});
                else
                    ++rejected;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }

        struct Success
        {
            std::string tenant;
            const nn::Tensor *image;
            ServedResult result;
        };
        std::vector<Success> successes;
        std::set<std::uint64_t> successIds;
        std::size_t failed = 0;
        for (Pending &p : pending) {
            try {
                ServedResult r = p.future.get();
                EXPECT_TRUE(successIds.insert(r.requestId).second)
                    << "duplicate requestId " << r.requestId;
                successes.push_back(
                    {p.tenant, p.image, std::move(r)});
            } catch (const StatusError &e) {
                const StatusCode code = e.status().code;
                EXPECT_TRUE(code == StatusCode::Timeout ||
                            code == StatusCode::Quarantined ||
                            code == StatusCode::Cancelled)
                    << "unexpected failure taxonomy: "
                    << e.status().toString();
                ++failed;
            }
            // Anything else (std::future_error from a lost promise,
            // a foreign exception) fails the test by escaping.
        }
        fe.shutdown();

        // Lossless accounting: every accepted request resolved exactly
        // once, as a success or a taxonomy-coded failure.
        EXPECT_EQ(successes.size() + failed, pending.size())
            << "seed " << seed;
        const TenantStats gstats = fe.tenantStats("gold");
        const TenantStats bstats = fe.tenantStats("bulk");
        EXPECT_EQ(gstats.submitted + bstats.submitted, pending.size());
        EXPECT_EQ(gstats.completed + bstats.completed, successes.size());
        EXPECT_EQ(gstats.failed + bstats.failed, failed);
        EXPECT_EQ(gstats.rejected + bstats.rejected, rejected);

        // Determinism under chaos: every success replays bit-identically
        // through the synchronous engine entry points, no matter how
        // many retries, kicks or crashes the request lived through.
        const core::ScNetworkEngine &engine = fe.model("m").engine();
        for (const Success &s : successes) {
            if (s.result.adaptive) {
                const core::AdaptivePrediction ref = engine.inferAdaptive(
                    *s.image, s.result.requestId,
                    s.result.effectivePolicy);
                EXPECT_EQ(s.result.prediction.scores,
                          ref.prediction.scores);
                EXPECT_EQ(s.result.consumedCycles, ref.consumedCycles);
            } else {
                const core::ScPrediction ref =
                    engine.inferIndexed(*s.image, s.result.requestId);
                EXPECT_EQ(s.result.prediction.scores, ref.scores);
            }
        }
    }
}

} // namespace
} // namespace aqfpsc::serving
