/**
 * @file
 * Unit and fuzz tests for the AQFP physical-design passes.
 *
 * The central property is functional equivalence: majority synthesis,
 * splitter insertion and path balancing must never change a netlist's
 * combinational function.  Random DAGs provide the fuzzing substrate.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aqfp/energy_model.h"
#include "aqfp/netlist.h"
#include "aqfp/passes.h"
#include "aqfp/simulator.h"
#include "sc/rng.h"

namespace aqfpsc::aqfp {
namespace {

/** Build a random DAG netlist with the given number of inputs and gates. */
Netlist
randomNetlist(int n_inputs, int n_gates, std::uint64_t seed)
{
    sc::Xoshiro256StarStar rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int i = 0; i < n_inputs; ++i)
        pool.push_back(n.addInput());
    pool.push_back(n.addConst(false));
    pool.push_back(n.addConst(true));

    const CellType kinds[] = {CellType::Buffer, CellType::Inverter,
                              CellType::And2, CellType::Or2,
                              CellType::Nand2, CellType::Nor2,
                              CellType::Maj3};
    for (int g = 0; g < n_gates; ++g) {
        const CellType type =
            kinds[rng.nextWord() % (sizeof(kinds) / sizeof(kinds[0]))];
        auto pick = [&] {
            return pool[static_cast<std::size_t>(
                rng.nextWord() % pool.size())];
        };
        const int fanins = faninCount(type);
        const NodeId id = n.addGateNeg(
            type, pick(), rng.nextBit(),
            fanins > 1 ? pick() : kNoNode, fanins > 1 && rng.nextBit(),
            fanins > 2 ? pick() : kNoNode, fanins > 2 && rng.nextBit());
        pool.push_back(id);
    }
    // Mark the last few nodes as outputs.
    for (int i = 0; i < 4 && i < static_cast<int>(pool.size()); ++i)
        n.markOutput(pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
    return n;
}

/** Evaluate outputs for every input pattern (n_inputs <= 12). */
std::vector<std::vector<bool>>
truthTable(const Netlist &n)
{
    const int n_inputs = static_cast<int>(n.inputs().size());
    std::vector<std::vector<bool>> table;
    for (int pattern = 0; pattern < (1 << n_inputs); ++pattern) {
        std::vector<bool> in(static_cast<std::size_t>(n_inputs));
        for (int i = 0; i < n_inputs; ++i)
            in[static_cast<std::size_t>(i)] = (pattern >> i) & 1;
        table.push_back(evalCombinational(n, in));
    }
    return table;
}

class PassFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PassFuzzTest, MajoritySynthesisPreservesFunction)
{
    const Netlist before = randomNetlist(6, 40, GetParam());
    const Netlist after = majoritySynthesis(before);
    ASSERT_TRUE(after.check());
    EXPECT_EQ(truthTable(before), truthTable(after));
}

TEST_P(PassFuzzTest, MajoritySynthesisNeverGrowsJj)
{
    const Netlist before = randomNetlist(6, 40, GetParam());
    PassStats stats;
    const Netlist after = majoritySynthesis(before, &stats);
    EXPECT_LE(after.jjCount(), before.jjCount());
    EXPECT_EQ(stats.jjAfter, after.jjCount());
}

TEST_P(PassFuzzTest, InsertSplittersPreservesFunctionAndLegalizesFanout)
{
    const Netlist before = randomNetlist(5, 30, GetParam());
    const Netlist after = insertSplitters(before);
    ASSERT_TRUE(after.check());
    EXPECT_EQ(truthTable(before), truthTable(after));
    const auto fanout = after.fanoutCounts();
    for (std::size_t id = 0; id < after.size(); ++id) {
        EXPECT_LE(fanout[id],
                  fanoutCapacity(after.gate(static_cast<NodeId>(id)).type));
    }
}

TEST_P(PassFuzzTest, FullLegalizePreservesFunctionAndRules)
{
    const Netlist before = randomNetlist(5, 30, GetParam());
    const Netlist after = legalize(before);
    ASSERT_TRUE(after.check());
    EXPECT_EQ(truthTable(before), truthTable(after));
    std::string err;
    EXPECT_TRUE(checkLegalized(after, &err)) << err;
}

TEST_P(PassFuzzTest, LegalizedStreamsAtFullRate)
{
    // The deep-pipelining property: a balanced netlist accepts a new
    // input wave every tick and reproduces the combinational function
    // with a fixed latency -- the property that makes SC viable on AQFP.
    const Netlist before = randomNetlist(4, 20, GetParam());
    const Netlist after = legalize(before);
    const int depth = after.depth();

    PhaseAccurateSimulator sim(after);
    sc::Xoshiro256StarStar rng(GetParam() * 31 + 7);
    std::vector<std::vector<bool>> waves;
    std::vector<std::vector<bool>> outputs;
    const int n_ticks = depth + 32;
    for (int t = 0; t < n_ticks; ++t) {
        std::vector<bool> in(after.inputs().size());
        for (std::size_t i = 0; i < in.size(); ++i)
            in[i] = rng.nextBit();
        waves.push_back(in);
        outputs.push_back(sim.tick(in));
    }
    for (int t = depth; t < n_ticks; ++t) {
        EXPECT_EQ(outputs[static_cast<std::size_t>(t)],
                  evalCombinational(after,
                                    waves[static_cast<std::size_t>(t - depth)]))
            << "tick " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST_P(PassFuzzTest, CaterpillarSplittersAlsoLegalAndEquivalent)
{
    const Netlist before = randomNetlist(5, 30, GetParam() + 100);
    const Netlist after = legalize(before, true, nullptr,
                                   SplitterShape::Caterpillar);
    ASSERT_TRUE(after.check());
    EXPECT_EQ(truthTable(before), truthTable(after));
    std::string err;
    EXPECT_TRUE(checkLegalized(after, &err)) << err;
}

TEST(MajoritySynthesis, DoubleInverterEliminated)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId i1 = n.addGate(CellType::Inverter, a);
    const NodeId i2 = n.addGate(CellType::Inverter, i1);
    n.markOutput(i2);
    const Netlist after = majoritySynthesis(n);
    // Both inverters vanish: output is the input itself.
    EXPECT_EQ(after.jjCount(), 0);
    EXPECT_EQ(after.outputs()[0], after.inputs()[0]);
}

TEST(MajoritySynthesis, ConstantFolding)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId c0 = n.addConst(false);
    const NodeId c1 = n.addConst(true);
    n.markOutput(n.addGate(CellType::And2, a, c0));  // -> 0
    n.markOutput(n.addGate(CellType::And2, a, c1));  // -> a
    n.markOutput(n.addGate(CellType::Or2, a, c1));   // -> 1
    n.markOutput(n.addGate(CellType::Maj3, a, a, c0)); // -> a
    const Netlist after = majoritySynthesis(n);
    // No logic gates survive; only materialized output constants.
    EXPECT_EQ(after.countType(CellType::And2), 0);
    EXPECT_EQ(after.countType(CellType::Or2), 0);
    EXPECT_EQ(after.countType(CellType::Maj3), 0);
    EXPECT_EQ(truthTable(n), truthTable(after));
}

TEST(MajoritySynthesis, CommonSubexpressionShared)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    const NodeId g1 = n.addGate(CellType::And2, a, b);
    const NodeId g2 = n.addGate(CellType::And2, b, a); // commuted duplicate
    n.markOutput(n.addGate(CellType::Or2, g1, g2));
    const Netlist after = majoritySynthesis(n);
    // And(a,b) == And(b,a) shares one gate; Or(x,x) collapses to x.
    EXPECT_EQ(after.countType(CellType::And2), 1);
    EXPECT_EQ(after.countType(CellType::Or2), 0);
    EXPECT_EQ(truthTable(n), truthTable(after));
}

TEST(MajoritySynthesis, NandNorBecomePolarity)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    const NodeId g = n.addGate(CellType::Nand2, a, b);
    n.markOutput(n.addGate(CellType::And2, g, a));
    const Netlist after = majoritySynthesis(n);
    EXPECT_EQ(after.countType(CellType::Nand2), 0);
    EXPECT_EQ(truthTable(n), truthTable(after));
}

TEST(MajoritySynthesis, InverterAbsorbedIntoConsumer)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    const NodeId inv = n.addGate(CellType::Inverter, a);
    n.markOutput(n.addGate(CellType::And2, inv, b));
    const Netlist after = majoritySynthesis(n);
    EXPECT_EQ(after.countType(CellType::Inverter), 0);
    EXPECT_EQ(truthTable(n), truthTable(after));
}

TEST(InsertSplitters, BalancedTreeDepth)
{
    // Fanout 8 from one input: 7 splitters in a 3-level balanced tree.
    Netlist n;
    const NodeId a = n.addInput();
    std::vector<NodeId> sinks;
    for (int i = 0; i < 8; ++i)
        n.markOutput(n.addGate(CellType::Buffer, a));
    PassStats stats;
    const Netlist after = insertSplitters(n, &stats);
    EXPECT_EQ(stats.splittersInserted, 7);
    // Depth grows by the 3 splitter levels.
    EXPECT_EQ(after.depth(), n.depth() + 3);
}

TEST(InsertSplitters, NoChangeWithoutFanout)
{
    Netlist n;
    const NodeId a = n.addInput();
    n.markOutput(n.addGate(CellType::Buffer, a));
    PassStats stats;
    const Netlist after = insertSplitters(n, &stats);
    EXPECT_EQ(stats.splittersInserted, 0);
    EXPECT_EQ(after.size(), n.size());
}

TEST(BalancePaths, InsertsBuffersOnShortPath)
{
    // b reaches the AND directly while a goes through two buffers: the
    // pass must pad b's edge with two buffers.
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    const NodeId a1 = n.addGate(CellType::Buffer, a);
    const NodeId a2 = n.addGate(CellType::Buffer, a1);
    n.markOutput(n.addGate(CellType::And2, a2, b));
    PassStats stats;
    const Netlist after = balancePaths(n, true, &stats);
    EXPECT_EQ(stats.buffersInserted, 2);
    std::string err;
    EXPECT_TRUE(checkLegalized(legalize(n), &err)) << err;
}

TEST(BalancePaths, AlignsOutputs)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId deep = n.addGate(
        CellType::Buffer, n.addGate(CellType::Buffer, a));
    const NodeId shallow = n.addGate(CellType::Inverter, a);
    n.markOutput(deep);
    n.markOutput(shallow);
    const Netlist after = balancePaths(n, true);
    const auto lvl = after.levels();
    EXPECT_EQ(lvl[static_cast<std::size_t>(after.outputs()[0])],
              lvl[static_cast<std::size_t>(after.outputs()[1])]);
}

TEST(BalancePaths, PhasesAssigned)
{
    Netlist n;
    const NodeId a = n.addInput();
    n.markOutput(n.addGate(CellType::Buffer,
                           n.addGate(CellType::Buffer, a)));
    const Netlist after = balancePaths(n);
    for (std::size_t id = 0; id < after.size(); ++id)
        EXPECT_GE(after.gate(static_cast<NodeId>(id)).phase, 0);
}

TEST(EnergyModel, AnalyzeSimpleChain)
{
    Netlist n;
    const NodeId a = n.addInput();
    NodeId cur = a;
    for (int i = 0; i < 4; ++i)
        cur = n.addGate(CellType::Buffer, cur);
    n.markOutput(cur);
    const AqfpTechnology tech;
    const HardwareCost cost = analyzeNetlist(n, tech);
    EXPECT_EQ(cost.jj, 8);
    EXPECT_EQ(cost.depthPhases, 4);
    // 4 buffers at 10 zJ per buffer-cycle.
    EXPECT_NEAR(cost.energyPerCycleJ, 4e-20, 1e-25);
    EXPECT_NEAR(cost.latencySeconds, 4 * 0.2e-9, 1e-15);
    EXPECT_NEAR(cost.energyPerStreamJ(1024), 4e-20 * 1024, 1e-22);
}

TEST(EnergyModel, TechnologyDerivedQuantities)
{
    AqfpTechnology tech;
    EXPECT_NEAR(tech.cycleSeconds(), 0.2e-9, 1e-15);
    EXPECT_NEAR(tech.phaseSeconds(), 0.05e-9, 1e-15);
}

TEST(PassStats, SummaryIsReadable)
{
    Netlist n;
    const NodeId a = n.addInput();
    n.markOutput(n.addGate(CellType::Buffer, a));
    PassStats stats;
    legalize(n, true, &stats);
    const std::string s = stats.summary();
    EXPECT_NE(s.find("gates"), std::string::npos);
    EXPECT_NE(s.find("JJ"), std::string::npos);
}

} // namespace
} // namespace aqfpsc::aqfp
