/**
 * @file
 * Unit tests for the AQFP cell library, netlist and simulators.
 */

#include <gtest/gtest.h>

#include "aqfp/arith.h"
#include "aqfp/cell.h"
#include "aqfp/export.h"
#include "aqfp/netlist.h"
#include "aqfp/passes.h"
#include "aqfp/simulator.h"
#include "sc/rng.h"

namespace aqfpsc::aqfp {
namespace {

TEST(Cell, JjCounts)
{
    // Minimalist cell library accounting (Sec. 2.1 / Takeuchi 2015).
    EXPECT_EQ(jjCount(CellType::Input), 0);
    EXPECT_EQ(jjCount(CellType::Buffer), 2);
    EXPECT_EQ(jjCount(CellType::Inverter), 2);
    EXPECT_EQ(jjCount(CellType::Const0), 2);
    EXPECT_EQ(jjCount(CellType::Const1), 2);
    EXPECT_EQ(jjCount(CellType::Splitter), 4);
    // A 3-input majority costs the same as 2-input AND/OR (Sec. 4.4).
    EXPECT_EQ(jjCount(CellType::Maj3), 6);
    EXPECT_EQ(jjCount(CellType::And2), jjCount(CellType::Maj3));
    EXPECT_EQ(jjCount(CellType::Or2), jjCount(CellType::Maj3));
}

TEST(Cell, FaninCounts)
{
    EXPECT_EQ(faninCount(CellType::Input), 0);
    EXPECT_EQ(faninCount(CellType::Const0), 0);
    EXPECT_EQ(faninCount(CellType::Buffer), 1);
    EXPECT_EQ(faninCount(CellType::Splitter), 1);
    EXPECT_EQ(faninCount(CellType::And2), 2);
    EXPECT_EQ(faninCount(CellType::Maj3), 3);
}

TEST(Cell, FanoutCapacity)
{
    // Only splitters may drive more than one consumer in AQFP.
    EXPECT_EQ(fanoutCapacity(CellType::Splitter), 2);
    EXPECT_EQ(fanoutCapacity(CellType::Buffer), 1);
    EXPECT_EQ(fanoutCapacity(CellType::Maj3), 1);
}

TEST(Cell, EvalTruthTables)
{
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            EXPECT_EQ(evalCell(CellType::And2, a, b, false), a && b);
            EXPECT_EQ(evalCell(CellType::Or2, a, b, false), a || b);
            EXPECT_EQ(evalCell(CellType::Nand2, a, b, false), !(a && b));
            EXPECT_EQ(evalCell(CellType::Nor2, a, b, false), !(a || b));
            for (int c = 0; c < 2; ++c) {
                EXPECT_EQ(evalCell(CellType::Maj3, a, b, c),
                          a + b + c >= 2);
            }
        }
        EXPECT_EQ(evalCell(CellType::Buffer, a, false, false), a);
        EXPECT_EQ(evalCell(CellType::Inverter, a, false, false), !a);
        EXPECT_EQ(evalCell(CellType::Splitter, a, false, false), a);
    }
    EXPECT_FALSE(evalCell(CellType::Const0, false, false, false));
    EXPECT_TRUE(evalCell(CellType::Const1, false, false, false));
}

TEST(Netlist, BuildAndCheck)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    const NodeId g = n.addGate(CellType::And2, a, b);
    n.markOutput(g);
    EXPECT_EQ(n.size(), 3u);
    EXPECT_EQ(n.inputs().size(), 2u);
    EXPECT_EQ(n.outputs().size(), 1u);
    EXPECT_TRUE(n.check());
    EXPECT_EQ(n.jjCount(), 6);
    EXPECT_EQ(n.depth(), 1);
}

TEST(Netlist, XnorMacroTruthTable)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    n.markOutput(n.addXnor(a, b));
    ASSERT_TRUE(n.check());
    for (int va = 0; va < 2; ++va) {
        for (int vb = 0; vb < 2; ++vb) {
            const auto out =
                evalCombinational(n, {va != 0, vb != 0});
            ASSERT_EQ(out.size(), 1u);
            EXPECT_EQ(out[0], va == vb) << va << "," << vb;
        }
    }
}

TEST(Netlist, NegatedInputs)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    // AND(~a, b)
    n.markOutput(n.addGateNeg(CellType::And2, a, true, b, false));
    EXPECT_TRUE(evalCombinational(n, {false, true})[0]);
    EXPECT_FALSE(evalCombinational(n, {true, true})[0]);
}

TEST(Netlist, ConstantsDoNotConstrainDepth)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId c = n.addConst(true);
    const NodeId g1 = n.addGate(CellType::And2, a, c);
    const NodeId g2 = n.addGate(CellType::And2, g1, c);
    n.markOutput(g2);
    EXPECT_EQ(n.depth(), 2);
    const auto lvl = n.levels();
    EXPECT_EQ(lvl[static_cast<std::size_t>(c)], 0);
    EXPECT_EQ(lvl[static_cast<std::size_t>(g2)], 2);
}

TEST(Netlist, FanoutCounts)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId g1 = n.addGate(CellType::Buffer, a);
    n.addGate(CellType::And2, a, g1); // unused output on purpose
    n.markOutput(g1);
    const auto fo = n.fanoutCounts();
    EXPECT_EQ(fo[static_cast<std::size_t>(a)], 2);  // buffer + and
    EXPECT_EQ(fo[static_cast<std::size_t>(g1)], 2); // and + output
}

TEST(Netlist, CheckRejectsMissingFanin)
{
    Netlist n;
    n.addInput();
    // Manually corrupt: gate with forward reference is impossible through
    // the API, so validate the diagnostics path via an output id check.
    std::string err;
    EXPECT_TRUE(n.check(&err));
}

TEST(Simulator, CombinationalMajority)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    const NodeId c = n.addInput();
    n.markOutput(n.addGate(CellType::Maj3, a, b, c));
    for (int pattern = 0; pattern < 8; ++pattern) {
        const bool va = pattern & 1, vb = pattern & 2, vc = pattern & 4;
        const auto out = evalCombinational(n, {va, vb, vc});
        EXPECT_EQ(out[0], (va + vb + vc) >= 2);
    }
}

TEST(Simulator, PhaseAccurateDelayOnChain)
{
    // A 3-buffer chain delays the input wave by 3 ticks.
    Netlist n;
    const NodeId a = n.addInput();
    NodeId cur = a;
    for (int i = 0; i < 3; ++i)
        cur = n.addGate(CellType::Buffer, cur);
    n.markOutput(cur);

    PhaseAccurateSimulator sim(n);
    const std::vector<bool> wave = {true, false, true,  true,
                                    false, false, true, false};
    std::vector<bool> seen;
    for (bool bit : wave)
        seen.push_back(sim.tick({bit})[0]);
    // After the 3-tick fill, outputs replay the input.
    for (std::size_t i = 3; i < wave.size(); ++i)
        EXPECT_EQ(seen[i], wave[i - 3]) << "tick " << i;
}

TEST(Simulator, ConstantsAvailableFromFirstTick)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId c1 = n.addConst(true);
    n.markOutput(n.addGate(CellType::And2, a, c1));
    PhaseAccurateSimulator sim(n);
    sim.tick({true}); // wave enters the input register
    // One gate level later the AND sees the first wave AND const 1 --
    // which requires the constant to be live already at tick 1.
    EXPECT_TRUE(sim.tick({true})[0]);
}

TEST(Simulator, ResetClearsState)
{
    Netlist n;
    const NodeId a = n.addInput();
    n.markOutput(n.addGate(CellType::Buffer, a));
    PhaseAccurateSimulator sim(n);
    sim.tick({true});
    EXPECT_TRUE(sim.tick({false})[0]);
    sim.reset();
    EXPECT_FALSE(sim.tick({false})[0]);
}

TEST(Arith, XorMacroTruthTable)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    n.markOutput(addXor(n, a, b));
    for (int va = 0; va < 2; ++va) {
        for (int vb = 0; vb < 2; ++vb) {
            EXPECT_EQ(evalCombinational(n, {va != 0, vb != 0})[0],
                      va != vb);
        }
    }
}

TEST(Arith, RippleCarryAdderExhaustive)
{
    const int bits = 5;
    const Netlist adder = buildRippleCarryAdder(bits);
    ASSERT_TRUE(adder.check());
    for (int a = 0; a < (1 << bits); ++a) {
        for (int b = 0; b < (1 << bits); ++b) {
            std::vector<bool> in;
            for (int i = 0; i < bits; ++i)
                in.push_back((a >> i) & 1);
            for (int i = 0; i < bits; ++i)
                in.push_back((b >> i) & 1);
            const auto out = evalCombinational(adder, in);
            int sum = 0;
            for (int i = 0; i <= bits; ++i)
                sum |= (out[static_cast<std::size_t>(i)] ? 1 : 0) << i;
            ASSERT_EQ(sum, a + b) << a << "+" << b;
        }
    }
}

TEST(Arith, LegalizedAdderStillAdds)
{
    const int bits = 8;
    const Netlist adder = legalize(buildRippleCarryAdder(bits));
    std::string err;
    ASSERT_TRUE(checkLegalized(adder, &err)) << err;
    sc::Xoshiro256StarStar rng(11);
    for (int t = 0; t < 200; ++t) {
        const int a = static_cast<int>(rng.nextBits(bits));
        const int b = static_cast<int>(rng.nextBits(bits));
        std::vector<bool> in;
        for (int i = 0; i < bits; ++i)
            in.push_back((a >> i) & 1);
        for (int i = 0; i < bits; ++i)
            in.push_back((b >> i) & 1);
        const auto out = evalCombinational(adder, in);
        int sum = 0;
        for (int i = 0; i <= bits; ++i)
            sum |= (out[static_cast<std::size_t>(i)] ? 1 : 0) << i;
        ASSERT_EQ(sum, a + b);
    }
}

TEST(Arith, AdderDepthGrowsLinearly)
{
    // The ripple carry forces O(n) depth -- the RAW-stall motivation.
    const int d8 = legalize(buildRippleCarryAdder(8)).depth();
    const int d16 = legalize(buildRippleCarryAdder(16)).depth();
    EXPECT_GT(d16, d8 + 4);
}

TEST(Export, VerilogContainsStructure)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId b = n.addInput();
    n.markOutput(n.addGateNeg(CellType::And2, a, true, b, false));
    const std::string v = toVerilog(n, "test_mod");
    EXPECT_NE(v.find("module test_mod"), std::string::npos);
    EXPECT_NE(v.find("AQFP_AND2"), std::string::npos);
    EXPECT_NE(v.find("AQFP_INV"), std::string::npos); // polarity flag
    EXPECT_NE(v.find("assign po0"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Export, VerilogHandlesConstantsAndMajority)
{
    Netlist n;
    const NodeId a = n.addInput();
    const NodeId c1 = n.addConst(true);
    n.markOutput(n.addGate(CellType::Maj3, a, c1, n.addConst(false)));
    const std::string v = toVerilog(n, "m");
    EXPECT_NE(v.find("1'b1"), std::string::npos);
    EXPECT_NE(v.find("1'b0"), std::string::npos);
    EXPECT_NE(v.find("AQFP_MAJ3"), std::string::npos);
}

TEST(Export, DotContainsEdges)
{
    Netlist n;
    const NodeId a = n.addInput();
    n.markOutput(n.addGateNeg(CellType::Buffer, a, true, kNoNode, false));
    const std::string d = toDot(n, "g");
    EXPECT_NE(d.find("digraph g"), std::string::npos);
    EXPECT_NE(d.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(d.find("style=dashed"), std::string::npos); // negated edge
    EXPECT_NE(d.find("po0"), std::string::npos);
}

TEST(Export, WholeBlockExportsWithoutBlowup)
{
    const Netlist block =
        legalize(buildRippleCarryAdder(8));
    const std::string v = toVerilog(block, "adder8");
    // One instance per gate (minus inputs/constants) plus the library.
    EXPECT_GT(v.size(), 1000u);
    EXPECT_NE(v.find("AQFP_MAJ3"), std::string::npos);
}

} // namespace
} // namespace aqfpsc::aqfp
