/**
 * @file
 * Mixed stream-length precision: the per-stage length-vector contract.
 *
 * Coverage:
 *
 *  - a uniform explicit vector is bit-identical to the scalar streamLen
 *    config on every stream backend, deterministic and adaptive, at
 *    cohort sizes 1/4/8 (the canonicalized PlanSpec makes the two
 *    configs share one cached plan, so drift here means the resolution
 *    itself broke);
 *  - mixed vectors: the plan stores the resolved vector, sizes the
 *    ping-pong buffers from per-parity high-water lengths, and the
 *    checkpointed adaptive path is still a pure span decomposition of
 *    the one-shot run;
 *  - plan-cache keying: explicit-uniform hits the scalar entry, a
 *    different vector misses, and a cache-hit mixed engine is bitwise
 *    identical to a cold compile;
 *  - EngineOptions / resolveStageLens validation (alignment,
 *    monotonicity, stage-count mismatch);
 *  - PrecisionTuner: returns a valid non-increasing word-aligned vector
 *    within the evaluation budget;
 *  - serving: non-adaptive ServedPrediction::consumedCycles reports the
 *    plan's cycle total, not the scalar config fallback.
 */

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "core/plan_cache.h"
#include "core/precision_tuner.h"
#include "core/server.h"
#include "core/session.h"
#include "core/stages/stage_compiler.h"
#include "data/digits.h"

namespace aqfpsc::core {
namespace {

std::vector<nn::Sample>
testImages()
{
    return data::generateDigits(8, 33);
}

InferenceSession
makeSession(const std::string &backend, std::size_t stream_len,
            std::vector<std::size_t> stage_lens = {})
{
    EngineOptions opts;
    opts.backend = backend;
    opts.streamLen = stream_len;
    opts.stageStreamLens = std::move(stage_lens);
    return InferenceSession(buildTinyCnn(3), opts);
}

/** FNV-1a over the hexfloat rendering of every score: any bit drift in
 *  any class of any image changes the hash. */
std::uint64_t
scoreHash(const std::vector<ScPrediction> &preds)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    char buf[64];
    for (const ScPrediction &p : preds) {
        for (const double v : p.scores) {
            std::snprintf(buf, sizeof(buf), "%a;", v);
            for (const char *c = buf; *c; ++c) {
                h ^= static_cast<unsigned char>(*c);
                h *= 0x100000001B3ULL;
            }
        }
    }
    return h;
}

/** Stage count of the tiny zoo model on @p backend (the vector length
 *  resolveStageLens expects). */
std::size_t
stageCount(const std::string &backend)
{
    return makeSession(backend, 64).engine().plan().stageStreamLens.size();
}

TEST(MixedPrecision, UniformVectorBitIdenticalToScalarEverywhere)
{
    const auto samples = testImages();
    for (const char *backend : {"aqfp-sorter", "cmos-apc", "float-ref"}) {
        SCOPED_TRACE(backend);
        const std::size_t len = 192;
        const InferenceSession scalar = makeSession(backend, len);
        const std::size_t n = scalar.engine().plan().stageStreamLens.size();
        const InferenceSession vector =
            makeSession(backend, len, std::vector<std::size_t>(n, len));

        // The resolved plans must agree exactly.
        EXPECT_EQ(scalar.engine().plan().stageStreamLens,
                  vector.engine().plan().stageStreamLens);
        EXPECT_EQ(vector.engine().plan().fullRunCycles(), len);
        EXPECT_EQ(vector.engine().plan().terminalCycles(), len);

        for (const int cohort : {1, 4, 8}) {
            SCOPED_TRACE("cohort=" + std::to_string(cohort));
            EvalOptions opts;
            opts.cohort = cohort;
            const auto ref = scalar.predict(samples, opts);
            const auto got = vector.predict(samples, opts);
            ASSERT_EQ(got.size(), ref.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                EXPECT_EQ(got[i].scores, ref[i].scores) << i;
            EXPECT_EQ(scoreHash(got), scoreHash(ref));
        }
    }
}

TEST(MixedPrecision, UniformVectorBitIdenticalToScalarAdaptive)
{
    const auto samples = testImages();
    AdaptivePolicy policy;
    policy.checkpointCycles = 64;
    policy.exitMargin = 0.1;
    policy.minCycles = 64;
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        SCOPED_TRACE(backend);
        const std::size_t len = 256;
        const InferenceSession scalar = makeSession(backend, len);
        const std::size_t n = scalar.engine().plan().stageStreamLens.size();
        const InferenceSession vector =
            makeSession(backend, len, std::vector<std::size_t>(n, len));
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const AdaptivePrediction ref =
                scalar.engine().inferAdaptive(samples[i].image, i, policy);
            const AdaptivePrediction got =
                vector.engine().inferAdaptive(samples[i].image, i, policy);
            EXPECT_EQ(got.prediction.scores, ref.prediction.scores) << i;
            EXPECT_EQ(got.consumedCycles, ref.consumedCycles) << i;
            EXPECT_EQ(got.exitedEarly, ref.exitedEarly) << i;
        }
    }
}

/** A genuinely mixed vector: the plan keeps it verbatim, sizes the
 *  ping-pong buffers from per-parity maxima, and full-margin adaptive
 *  runs (which never exit early) reproduce the one-shot scores bitwise
 *  — the checkpoint loop is a span decomposition even when stages stop
 *  at different cycles. */
TEST(MixedPrecision, MixedVectorPlanAndAdaptiveDecomposition)
{
    const auto samples = testImages();
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        SCOPED_TRACE(backend);
        const std::size_t n = stageCount(backend);
        std::vector<std::size_t> lens(n, 128);
        lens.front() = 256;

        EngineOptions opts;
        opts.backend = backend;
        opts.streamLen = 256;
        opts.stageStreamLens = lens;
        const InferenceSession session(buildTinyCnn(3), opts);
        const auto &plan = session.engine().plan();
        EXPECT_EQ(plan.stageStreamLens, lens);
        EXPECT_EQ(plan.fullRunCycles(), 256u);
        EXPECT_EQ(plan.terminalCycles(), n > 1 ? 128u : 256u);
        // Parity 0 holds the first stage's output (the longest stream).
        EXPECT_EQ(plan.bufferLen[0], 256u);

        const auto oneShot = session.predict(samples, {});

        AdaptivePolicy policy;
        policy.checkpointCycles = 64;
        policy.exitMargin = 1e9; // unreachable: always run to the end
        policy.minCycles = 64;
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const AdaptivePrediction got =
                session.engine().inferAdaptive(samples[i].image, i, policy);
            EXPECT_EQ(got.prediction.scores, oneShot[i].scores) << i;
            EXPECT_FALSE(got.exitedEarly) << i;
            EXPECT_EQ(got.consumedCycles, 256u) << i;
        }

        // Cohort execution agrees with the per-image path too.
        for (const int cohort : {4, 8}) {
            EvalOptions eopts;
            eopts.cohort = cohort;
            const auto got = session.predict(samples, eopts);
            for (std::size_t i = 0; i < got.size(); ++i)
                EXPECT_EQ(got[i].scores, oneShot[i].scores)
                    << "cohort " << cohort << " image " << i;
        }
    }
}

TEST(MixedPrecision, PlanCacheKeysOnLengthVector)
{
    PlanCache &cache = PlanCache::instance();
    if (!cache.enabled())
        GTEST_SKIP() << "plan cache disabled in this environment";
    cache.clear();

    const std::size_t n = stageCount("aqfp-sorter");
    cache.clear();

    // Cold scalar compile, then an explicit uniform vector: the
    // canonicalized PlanSpec must land on the same entry (hit).
    const InferenceSession scalar = makeSession("aqfp-sorter", 128);
    (void)scalar.engine();
    const std::uint64_t missesAfterScalar = cache.stats().misses;
    const std::uint64_t hitsAfterScalar = cache.stats().hits;

    const InferenceSession uniform =
        makeSession("aqfp-sorter", 128, std::vector<std::size_t>(n, 128));
    (void)uniform.engine();
    EXPECT_EQ(cache.stats().misses, missesAfterScalar)
        << "explicit uniform vector must not recompile the scalar plan";
    EXPECT_GT(cache.stats().hits, hitsAfterScalar);

    // A different vector is a different plan.
    std::vector<std::size_t> mixed(n, 64);
    mixed.front() = 128;
    const InferenceSession first =
        makeSession("aqfp-sorter", 128, mixed);
    (void)first.engine();
    EXPECT_GT(cache.stats().misses, missesAfterScalar);

    // Cache-hit mixed engine is bitwise identical to the cold compile.
    const auto samples = testImages();
    const auto cold = first.predict(samples, {});
    const InferenceSession second =
        makeSession("aqfp-sorter", 128, mixed);
    const auto warm = second.predict(samples, {});
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < warm.size(); ++i)
        EXPECT_EQ(warm[i].scores, cold[i].scores) << i;
    EXPECT_EQ(scoreHash(warm), scoreHash(cold));
}

TEST(MixedPrecision, EngineOptionsValidateLengthVectors)
{
    EngineOptions opts;
    opts.stageStreamLens = {1024, 512, 512};
    EXPECT_TRUE(opts.validate().empty());

    opts.stageStreamLens = {512, 1024}; // increasing
    EXPECT_FALSE(opts.validate().empty());

    opts.stageStreamLens = {512, 100}; // not word-aligned
    EXPECT_FALSE(opts.validate().empty());

    opts.stageStreamLens = {512, 0}; // zero
    EXPECT_FALSE(opts.validate().empty());

    opts.stageStreamLens = {EngineOptions::kMaxStreamLen * 2};
    EXPECT_FALSE(opts.validate().empty());
}

TEST(MixedPrecision, StageCountMismatchFailsAtCompile)
{
    const std::size_t n = stageCount("aqfp-sorter");
    const InferenceSession session = makeSession(
        "aqfp-sorter", 128, std::vector<std::size_t>(n + 1, 128));
    EXPECT_THROW((void)session.engine(), std::invalid_argument);
}

TEST(MixedPrecision, TunerReturnsValidVectorWithinBudget)
{
    const nn::Network net = buildTinyCnn(3);
    EngineOptions opts;
    opts.backend = "aqfp-sorter";
    opts.streamLen = 256;

    TuneOptions topts;
    topts.maxAccuracyDrop = 1.0; // accept every halving
    topts.maxPasses = 2;
    topts.limit = 4;
    const TuneResult r =
        PrecisionTuner(net, opts).tune(testImages(), topts);

    ASSERT_FALSE(r.stageStreamLens.empty());
    EXPECT_EQ(r.stageStreamLens.size(), r.baselineStageStreamLens.size());
    for (std::size_t s = 0; s < r.stageStreamLens.size(); ++s) {
        EXPECT_EQ(r.stageStreamLens[s] % 64, 0u) << s;
        EXPECT_GE(r.stageStreamLens[s], 64u) << s;
        if (s > 0)
            EXPECT_LE(r.stageStreamLens[s], r.stageStreamLens[s - 1]) << s;
    }
    // With the budget wide open every stage descends to the floor.
    for (const std::size_t len : r.stageStreamLens)
        EXPECT_EQ(len, 64u);
    EXPECT_GT(r.evaluations, 1u);
    EXPECT_GE(r.passes, 1);
    EXPECT_GT(r.baselineImagesPerSec, 0.0);

    // The tuned vector must construct a working session.
    EngineOptions tuned = opts;
    tuned.streamLen = r.stageStreamLens.front();
    tuned.stageStreamLens = r.stageStreamLens;
    const InferenceSession session(buildTinyCnn(3), tuned);
    (void)session.infer(testImages()[0].image);

    // Bad budgets are rejected before any evaluation runs.
    TuneOptions bad;
    bad.maxPasses = 0;
    EXPECT_THROW(PrecisionTuner(net, opts).tune(testImages(), bad),
                 std::invalid_argument);
    EXPECT_THROW(PrecisionTuner(net, opts).tune({}, topts),
                 std::invalid_argument);
}

TEST(MixedPrecision, ServerReportsPlanCyclesNotScalarConfig)
{
    const auto samples = testImages();
    const std::size_t n = stageCount("aqfp-sorter");
    std::vector<std::size_t> lens(n, 64);
    lens.front() = 128;

    EngineOptions opts;
    opts.backend = "aqfp-sorter";
    // Scalar config deliberately disagrees with the vector's cycle
    // count: the fallback bug this pins down reported streamLen.
    opts.streamLen = 128;
    opts.stageStreamLens = lens;
    const InferenceSession session(buildTinyCnn(3), opts);

    ServerOptions sopts;
    sopts.workers = 1;
    InferenceServer server(session, sopts);
    std::future<ServedPrediction> f = server.submit(samples[0].image);
    const ServedPrediction r = f.get();
    EXPECT_EQ(r.consumedCycles, session.engine().plan().fullRunCycles());
    EXPECT_EQ(r.consumedCycles, 128u);
}

} // namespace
} // namespace aqfpsc::core
